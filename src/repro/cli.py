"""Command-line interface.

Ten subcommands cover the workflows a downstream user needs most often::

    python -m repro.cli evaluate    --dataset glove-small --index-type HNSW
    python -m repro.cli tune        --dataset glove-small --iterations 50 --recall-floor 0.9
    python -m repro.cli compare     --dataset glove-small --iterations 30 --tuners vdtuner random qehvi
    python -m repro.cli tune-online --dataset glove-small --drift shift --seed 0
    python -m repro.cli scenario-matrix --output matrix.json
    python -m repro.cli serve       --preload glove-small --port 8421 --data-dir /var/lib/vdms
    python -m repro.cli tune-tenants --tenant-config tenants.json --budget 40
    python -m repro.cli recover     --data-dir /var/lib/vdms
    python -m repro.cli loadgen     --url http://127.0.0.1:8421 --qps 50 --duration 5
    python -m repro.cli profile-scan --rows 20000 --dimension 128 --queries 8

``evaluate`` replays the workload once for a single configuration, ``tune``
runs VDTuner and prints the recommended configuration, and ``compare`` runs
several tuners with the same budget and prints a Figure 6-style table.

``tune-online`` runs the continuous tune/serve loop on a drifting workload
(:mod:`repro.workloads.dynamic`): it tunes, deploys the incumbent, detects
the drift via CUSUM on the served metrics and re-tunes warm-started
(``--cold-restart`` disables the warm start).  ``scenario-matrix`` sweeps
{drift x severity x tuner} and persists per-phase Pareto metrics to JSON.

``evaluate`` accepts ``--shards S --routing-policy hash|range
--search-threads T`` to serve the replay through the sharded scatter-gather
engine and the concurrent query scheduler (measured concurrent QPS), e.g.::

    python -m repro.cli evaluate --dataset glove-small --index-type IVF_FLAT \
        --shards 4 --search-threads 4 --set segment_max_size=125

``tune``, ``compare`` and ``tune-online`` accept ``--batch-size Q --workers N``
to switch the tuners to the batch-parallel engine: joint q-EHVI suggestion
batches evaluated concurrently on a worker pool (see :mod:`repro.parallel`),
e.g.::

    python -m repro.cli tune --dataset glove-small --iterations 48 --batch-size 4 --workers 4

``serve`` exposes a VDMS instance over JSON/HTTP with admission control
(bounded queue, deadlines, load shedding, graceful drain on SIGTERM) and
``loadgen`` drives it with an open-loop Poisson arrival stream, reporting
achieved QPS, latency quantiles and the shed rate (see :mod:`repro.serving`).
``serve --data-dir DIR`` makes the server durable (write-ahead log +
checkpoints under ``DIR``; existing collections are recovered before the
socket binds) and ``recover`` performs the same recovery offline, reporting
what each collection's WAL and checkpoint rebuilt.

``serve --tenant-config FILE`` makes the server multi-tenant: each tenant
(= collection) gets its own bounded queue drained by weighted-fair (stride)
scheduling (``--scheduling fifo`` replays the old shared queue), its own
SLO and optionally its own ``SystemConfig`` override.  ``tune-tenants``
runs one SLO-constrained online tuner per tenant under a shared evaluation
budget — each recall floor drives constrained acquisition, a declared cost
budget switches that tenant to the QP$ objective — and exits non-zero if
any tenant misses its floor.

``profile-scan`` times the exact-scan kernel stage by stage
(cast/GEMM/select/merge) on synthetic data; the per-(row x dim) GEMM figure
it prints is what ``CostModel.calibrate_scan`` accepts to re-calibrate
simulated scan latencies against the measured kernels.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.analysis.tradeoff import DEFAULT_SACRIFICES, speed_vs_sacrifice_curve, tradeoff_ability
from repro.baselines import make_tuner
from repro.config import build_milvus_space, default_configuration
from repro.config.milvus_space import INDEX_TYPES
from repro.core import ObjectiveSpec, VDTuner, VDTunerSettings
from repro.datasets import DATASET_NAMES
from repro.serving.admission import SCHEDULING_POLICIES
from repro.vdms.errors import DurabilityError, InvalidConfigurationError
from repro.vdms.system_config import SystemConfig
from repro.workloads import VDMSTuningEnvironment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="VDTuner reproduction: evaluate, tune and compare VDMS configurations.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dataset", default="glove-small", choices=sorted(DATASET_NAMES))
        sub.add_argument("--seed", type=int, default=0, help="random seed")

    def add_batch_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--batch-size",
            type=int,
            default=1,
            metavar="Q",
            help="suggest and evaluate Q configurations per tuning iteration using "
            "joint q-EHVI batches (default 1: the paper's sequential loop); the "
            "total evaluation budget is unchanged",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="evaluate each batch on N parallel workers, each with its own "
            "VDMS server over a shared read-only dataset (default 1: in-process); "
            "results are deterministic and identical for any worker count",
        )
        sub.add_argument(
            "--parallel-backend",
            default="process",
            choices=["process", "thread", "serial"],
            help="worker-pool backend for --workers > 1 (default: process)",
        )

    evaluate = subparsers.add_parser("evaluate", help="replay the workload for one configuration")
    add_common(evaluate)
    evaluate.add_argument("--index-type", default="AUTOINDEX", choices=list(INDEX_TYPES))
    evaluate.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="S",
        help="shard the collection into S hash/range partitions (shard_num)",
    )
    evaluate.add_argument(
        "--routing-policy",
        default=None,
        choices=["hash", "range"],
        help="row-to-shard routing policy (with --shards)",
    )
    evaluate.add_argument(
        "--search-threads",
        type=int,
        default=None,
        metavar="T",
        help="serve the workload with a T-thread query scheduler and report "
        "the measured concurrent QPS (default 1: serial search with the "
        "analytic concurrency model)",
    )
    evaluate.add_argument(
        "--filter-selectivity",
        type=float,
        default=None,
        metavar="S",
        help="attach an attribute filter matching a fraction S in (0, 1] of "
        "the corpus to every query (hybrid filtered search); combine with "
        "--set filter_strategy=pre|post|auto and --set overfetch_factor=F "
        "to pin the execution strategy",
    )
    evaluate.add_argument(
        "--cache-policy",
        default=None,
        choices=["none", "lru"],
        help="query-result/plan cache policy (cache_policy); lru serves "
        "repeated requests from the tiered cache and reports the hit ratio",
    )
    evaluate.add_argument(
        "--cache-capacity",
        type=int,
        default=None,
        metavar="N",
        help="entries kept per cache tier (cache_capacity, with --cache-policy lru)",
    )
    evaluate.add_argument(
        "--popularity-skew",
        type=float,
        default=None,
        metavar="S",
        help="replay a Zipf(s=S) popularity-skewed request stream instead of "
        "one pass over the query pool (hot queries repeat; pair with "
        "--cache-policy lru to see the cache pay off)",
    )
    evaluate.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override a parameter of the default configuration (repeatable)",
    )

    tune = subparsers.add_parser("tune", help="run VDTuner and print the best configuration")
    add_common(tune)
    tune.add_argument("--iterations", type=int, default=50)
    tune.add_argument("--recall-floor", type=float, default=0.0,
                      help="report the best configuration with recall at or above this value")
    tune.add_argument("--recall-constraint", type=float, default=None,
                      help="optimize with a user recall-rate preference (constraint model)")
    tune.add_argument("--cost-aware", action="store_true",
                      help="optimize queries-per-dollar (QP$) instead of QPS")
    tune.add_argument("--json", action="store_true", help="print the best configuration as JSON")
    add_batch_options(tune)

    compare = subparsers.add_parser("compare", help="run several tuners with the same budget")
    add_common(compare)
    compare.add_argument("--iterations", type=int, default=30)
    add_batch_options(compare)
    compare.add_argument(
        "--tuners",
        nargs="+",
        default=["vdtuner", "random", "opentuner", "ottertune", "qehvi"],
        help="tuner registry names",
    )

    def add_drift_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--steps", type=int, default=36,
                         help="total online evaluation budget (tuning + serving)")
        sub.add_argument("--retune-budget", type=int, default=8,
                         help="evaluations per (re-)tuning episode")
        sub.add_argument("--severity", type=float, default=0.7,
                         help="drift severity in (0, 1]")
        sub.add_argument("--cold-restart", action="store_true",
                         help="re-tune from scratch instead of warm-starting "
                         "from the decayed knowledge base")

    tune_online = subparsers.add_parser(
        "tune-online",
        help="run the continuous tune/serve loop on a drifting workload",
    )
    add_common(tune_online)
    tune_online.add_argument(
        "--drift",
        default="shift",
        help="drift scenario: query_shift/shift, data_churn/churn, "
        "qps_burst/burst, filter_shift/filter, or none",
    )
    tune_online.add_argument("--drift-step", type=int, default=None,
                             help="evaluation step the drift fires at (default: 60%% of --steps)")
    tune_online.add_argument(
        "--filter-selectivity",
        type=float,
        default=None,
        metavar="S",
        help="target selectivity of the filter_shift drift (fraction of the "
        "corpus the emitted attribute predicate matches, in (0.1, 1)); "
        "overrides --severity and requires --drift filter",
    )
    tune_online.add_argument("--tuner", default="vdtuner", help="tuner registry name")
    tune_online.add_argument("--json", action="store_true",
                             help="print the full online report summary as JSON")
    add_drift_options(tune_online)
    add_batch_options(tune_online)

    matrix = subparsers.add_parser(
        "scenario-matrix",
        help="sweep {drift x severity x tuner} and persist per-phase Pareto metrics",
    )
    add_common(matrix)
    matrix.add_argument("--drifts", nargs="+",
                        default=["query_shift", "data_churn", "qps_burst", "filter_shift"],
                        help="drift scenarios to sweep")
    matrix.add_argument("--severities", nargs="+", type=float, default=[0.35, 0.7],
                        help="severities to sweep")
    matrix.add_argument("--tuners", nargs="+", default=["vdtuner", "random"],
                        help="tuners to sweep")
    matrix.add_argument("--steps", type=int, default=None,
                        help="total online evaluation budget per cell")
    matrix.add_argument("--retune-budget", type=int, default=None,
                        help="evaluations per (re-)tuning episode")
    matrix.add_argument("--output", default=None, metavar="PATH",
                        help="write the matrix to this JSON file")

    serve = subparsers.add_parser(
        "serve",
        help="run the JSON/HTTP serving front-end (admission control, graceful drain)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="listen address")
    serve.add_argument("--port", type=int, default=8421,
                       help="listen port (0 binds an ephemeral port)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="bounded admission queue; a full queue sheds with HTTP 429")
    serve.add_argument("--serve-workers", type=int, default=2, metavar="N",
                       help="execution threads draining the admission queue")
    serve.add_argument("--default-deadline-ms", type=float, default=None, metavar="MS",
                       help="deadline applied to requests that carry none; expired "
                       "requests are answered 504 without touching the backend")
    serve.add_argument("--drain-timeout", type=float, default=30.0, metavar="S",
                       help="seconds the graceful drain waits for admitted requests")
    serve.add_argument("--preload", default=None, metavar="DATASET",
                       choices=sorted(DATASET_NAMES),
                       help="build a ready-to-search collection from this dataset "
                       "before accepting traffic")
    serve.add_argument("--index-type", default="FLAT", choices=list(INDEX_TYPES),
                       help="index built over the preloaded collection")
    serve.add_argument("--collection-name", default="bench",
                       help="name of the preloaded collection")
    serve.add_argument("--data-dir", default=None, metavar="DIR",
                       help="persist collections under this directory (write-ahead "
                       "log + checkpoints); existing collections are recovered "
                       "before the socket binds")
    serve.add_argument("--durability-mode", default=None,
                       choices=["off", "wal", "wal+checkpoint"],
                       help="durability tier used with --data-dir (default: "
                       "wal+checkpoint when --data-dir is given)")
    serve.add_argument("--scheduling", default="fair", choices=list(SCHEDULING_POLICIES),
                       help="admission scheduling policy: 'fair' drains per-tenant "
                       "bounded queues by weighted-fair (stride) scheduling; 'fifo' "
                       "replays the single shared queue in arrival order")
    serve.add_argument("--tenant-config", default=None, metavar="FILE",
                       help="JSON tenant-config file: per-tenant fair-scheduling "
                       "weight, queue depth, SLO (recall floor / p99 target / cost "
                       "budget) and SystemConfig override; tenants are registered "
                       "before the socket binds")
    serve.add_argument("--seed", type=int, default=0, help="random seed")

    tune_tenants = subparsers.add_parser(
        "tune-tenants",
        help="run SLO-constrained online tuners for several tenants under one "
        "shared evaluation budget",
    )
    tune_tenants.add_argument("--tenant-config", required=True, metavar="FILE",
                              help="JSON tenant-config file; each tenant's SLO "
                              "(recall floor / cost budget) becomes its constrained "
                              "tuning objective, its weight its share of the budget")
    tune_tenants.add_argument("--dataset", default="glove-small",
                              choices=sorted(DATASET_NAMES),
                              help="dataset every tenant's environment replays")
    tune_tenants.add_argument("--steps", type=int, default=12, metavar="N",
                              help="per-tenant online steps (tune + serve)")
    tune_tenants.add_argument("--retune-budget", type=int, default=6, metavar="N",
                              help="evaluations per tenant's tuning episode")
    tune_tenants.add_argument("--budget", type=int, default=None, metavar="N",
                              help="shared evaluation budget across all tenants "
                              "(default: the sum of per-tenant steps, i.e. no "
                              "contention)")
    tune_tenants.add_argument("--tuner", default="vdtuner",
                              help="tuner registry name used for every tenant")
    tune_tenants.add_argument("--attained-penalty", type=float, default=4.0,
                              metavar="F",
                              help="how much faster an SLO-attained tenant's "
                              "scheduling pass advances (>= 1; higher steers the "
                              "remaining budget toward out-of-contract tenants)")
    tune_tenants.add_argument("--seed", type=int, default=0, help="random seed")
    tune_tenants.add_argument("--json", action="store_true",
                              help="print the per-tenant summary as JSON")

    recover = subparsers.add_parser(
        "recover",
        help="recover durable collections from a serve --data-dir directory",
    )
    recover.add_argument("--data-dir", required=True, metavar="DIR",
                         help="the directory a durable `serve --data-dir` wrote")
    recover.add_argument("--collection", default=None, metavar="NAME",
                         help="recover only this collection (default: every "
                         "collection found under the data directory)")
    recover.add_argument("--json", action="store_true",
                         help="print the recovery reports as JSON")

    loadgen = subparsers.add_parser(
        "loadgen",
        help="open-loop (Poisson-arrival) load generator against a running server",
    )
    loadgen.add_argument("--url", default="http://127.0.0.1:8421",
                         help="base URL of a running `repro.cli serve` instance")
    loadgen.add_argument("--collection", default="bench", help="collection to search")
    loadgen.add_argument("--qps", type=float, default=50.0,
                         help="target offered arrival rate (open-loop: requests are "
                         "dispatched on schedule regardless of outstanding work)")
    loadgen.add_argument("--duration", type=float, default=5.0, metavar="S",
                         help="length of the arrival schedule in seconds")
    loadgen.add_argument("--top-k", type=int, default=10, help="neighbours per query")
    loadgen.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                         help="per-request deadline forwarded in each search body")
    loadgen.add_argument("--no-cache", action="store_true",
                         help="send use_cache=false so every request costs real "
                         "scatter-gather work")
    loadgen.add_argument("--seed", type=int, default=0, help="random seed")
    loadgen.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of a table")

    profile_scan = subparsers.add_parser(
        "profile-scan",
        help="time the exact-scan kernel stage by stage (cast/GEMM/select/merge)",
    )
    profile_scan.add_argument("--rows", type=int, default=20_000,
                              help="stored vectors in the synthetic segment")
    profile_scan.add_argument("--dimension", type=int, default=128,
                              help="vector dimensionality")
    profile_scan.add_argument("--queries", type=int, default=8,
                              help="queries per timed scan batch")
    profile_scan.add_argument("--top-k", type=int, default=10,
                              help="neighbours selected per query")
    profile_scan.add_argument("--metric", default="angular",
                              choices=["angular", "l2", "ip"],
                              help="distance metric to profile")
    profile_scan.add_argument("--shards", type=int, default=4,
                              help="per-shard top-k lists fed to the merge stage")
    profile_scan.add_argument("--repeats", type=int, default=7,
                              help="timed repetitions per stage (minimum reported)")
    profile_scan.add_argument("--seed", type=int, default=0, help="random seed")
    profile_scan.add_argument("--json", action="store_true",
                              help="print the timing table as JSON")
    return parser


def _fail(message: str) -> "SystemExit":
    """Abort with an actionable error message (printed to stderr, exit status 1)."""
    raise SystemExit(f"error: {message}")


def _validate_batch_options(args: argparse.Namespace) -> None:
    """Reject contradictory batch/worker flags before any work starts."""
    if getattr(args, "batch_size", 1) < 1:
        _fail(
            f"--batch-size must be >= 1 (got {args.batch_size}); "
            "use 1 for the paper's sequential loop"
        )
    if getattr(args, "workers", 1) < 1:
        _fail(
            f"--workers must be >= 1 (got {args.workers}); "
            "use 1 for in-process evaluation"
        )


def _validate_evaluate_args(args: argparse.Namespace, dataset, overrides: dict) -> None:
    """Reject contradictory ``evaluate`` flags with actionable messages."""
    if args.search_threads is not None and args.search_threads < 1:
        _fail(
            f"--search-threads must be >= 1 (got {args.search_threads}); "
            "use 1 for serial search with the analytic concurrency model"
        )
    if args.filter_selectivity is not None and not 0.0 < args.filter_selectivity <= 1.0:
        _fail(
            f"--filter-selectivity must lie in (0, 1] (got {args.filter_selectivity}); "
            "it is the fraction of the corpus the attribute filter matches — "
            "use 1.0 for a filter every row satisfies, or drop the flag for "
            "unfiltered search"
        )
    if args.filter_selectivity is None and "filter_strategy" in overrides:
        print(
            "note: --set filter_strategy has no effect without --filter-selectivity; "
            "unfiltered searches never consult the filter planner",
            file=sys.stderr,
        )
    if args.popularity_skew is not None and (
        not math.isfinite(args.popularity_skew) or args.popularity_skew < 0.0
    ):
        _fail(
            f"--popularity-skew must be a finite value >= 0 (got {args.popularity_skew}); "
            "0 replays every query once, larger values concentrate the stream "
            "on the hot queries"
        )
    if args.cache_capacity is not None and args.cache_capacity < 1:
        _fail(
            f"--cache-capacity must be >= 1 (got {args.cache_capacity}); "
            "every cache tier needs room for at least one entry"
        )
    effective_policy = (
        args.cache_policy
        if args.cache_policy is not None
        else overrides.get("cache_policy", "none")
    )
    if args.cache_capacity is not None and effective_policy == "none":
        print(
            "note: --cache-capacity has no effect without --cache-policy lru; "
            "the cache is disabled by default",
            file=sys.stderr,
        )
    if args.popularity_skew and effective_policy == "none":
        print(
            "note: --popularity-skew replays a skewed stream but nothing "
            "memoizes it; add --cache-policy lru to serve repeats from cache",
            file=sys.stderr,
        )
    effective_shards = args.shards if args.shards is not None else overrides.get("shard_num", 1)
    if args.shards is not None:
        if args.shards < 1:
            _fail(f"--shards must be >= 1 (got {args.shards})")
        if args.shards > dataset.num_vectors:
            _fail(
                f"--shards {args.shards} exceeds the {dataset.num_vectors} rows of "
                f"dataset {dataset.name!r}; every shard needs at least one row"
            )
    if args.routing_policy is not None and int(effective_shards) == 1:
        print(
            "note: --routing-policy has no effect with a single shard; "
            "pass --shards S > 1 to partition the collection",
            file=sys.stderr,
        )


def _tune_online_severity(args: argparse.Namespace) -> float:
    """Resolve the drift severity, honouring ``--filter-selectivity``.

    The filter_shift event matches a ``max(0.05, 1 - 0.9 * severity)``
    fraction of the corpus, so a requested selectivity ``S`` maps back to
    ``severity = (1 - S) / 0.9``.
    """
    if args.filter_selectivity is None:
        return args.severity
    if args.drift.lower() not in ("filter", "selectivity", "filter_shift"):
        _fail(
            f"--filter-selectivity only applies to the filter_shift drift "
            f"(got --drift {args.drift}); pass --drift filter, or use "
            "--severity to scale other drift families"
        )
    selectivity = args.filter_selectivity
    if not 0.1 <= selectivity < 1.0:
        _fail(
            f"--filter-selectivity must lie in [0.1, 1) for tune-online "
            f"(got {selectivity}): the filter_shift severity mapping "
            "(1 - S) / 0.9 only reaches that range — 0.1 is the lowest "
            "selectivity a severity of 1.0 produces, and a filter matching "
            "everything (1.0) is no drift at all (use --drift none)"
        )
    return (1.0 - selectivity) / 0.9


def _validate_tune_online_args(args: argparse.Namespace, drift_step: int) -> None:
    """Reject contradictory ``tune-online`` flags with actionable messages."""
    if args.steps < 1:
        _fail(f"--steps must be >= 1 (got {args.steps})")
    if args.retune_budget < 1:
        _fail(f"--retune-budget must be >= 1 (got {args.retune_budget})")
    if args.retune_budget > args.steps:
        _fail(
            f"--retune-budget {args.retune_budget} exceeds --steps {args.steps}; "
            "the first tuning episode could never finish — lower the budget or "
            "raise the step count"
        )
    if not 0.0 < args.severity <= 1.0:
        _fail(f"--severity must lie in (0, 1] (got {args.severity})")
    drifting = args.drift.lower() not in ("none", "static")
    if drifting and not 1 <= drift_step <= args.steps:
        _fail(
            f"--drift-step {drift_step} is outside the run's 1..{args.steps} step "
            "range; the drift would never fire — move it inside the budget or "
            "use --drift none"
        )
    _validate_batch_options(args)


def _parse_overrides(pairs: Sequence[str], space) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"invalid override {pair!r}; expected NAME=VALUE")
        name, raw_value = pair.split("=", 1)
        if name not in space:
            raise SystemExit(f"unknown parameter {name!r}")
        parameter = space[name]
        try:
            value = type(parameter.default)(raw_value) if not isinstance(parameter.default, str) else raw_value
        except ValueError as error:
            raise SystemExit(f"cannot parse value for {name!r}: {error}") from None
        overrides[name] = value
    return overrides


def _command_evaluate(args: argparse.Namespace) -> int:
    space = build_milvus_space()
    environment = VDMSTuningEnvironment(args.dataset, space=space, seed=args.seed)
    overrides = _parse_overrides(args.overrides, space)
    _validate_evaluate_args(args, environment.dataset, overrides)
    if args.filter_selectivity is not None:
        import numpy as np

        from repro.workloads.dynamic import make_filtered_workload

        drifted, filtered = make_filtered_workload(
            environment.dataset,
            environment.workload,
            args.filter_selectivity,
            np.random.default_rng(args.seed),
            suffix="cli_filter",
        )
        environment.set_workload(filtered, dataset=drifted)
    if args.popularity_skew is not None:
        from dataclasses import replace as dataclass_replace

        environment.set_workload(
            dataclass_replace(environment.workload, popularity_skew=args.popularity_skew)
        )
    for name, value in (
        ("shard_num", args.shards),
        ("routing_policy", args.routing_policy),
        ("search_threads", args.search_threads),
        ("cache_policy", args.cache_policy),
        ("cache_capacity", args.cache_capacity),
    ):
        if value is not None:
            overrides.setdefault(name, value)
    try:
        configuration = default_configuration(
            space, index_type=args.index_type, overrides=overrides
        )
        SystemConfig.from_mapping(dict(configuration))
    except (ValueError, InvalidConfigurationError) as error:
        _fail(
            f"the combined configuration is invalid: {error}; "
            "check --set overrides against the documented parameter ranges"
        )
    result = environment.evaluate(configuration)
    rows = [
        ["index type", args.index_type],
        ["shards", configuration["shard_num"]],
        ["search threads", configuration["search_threads"]],
        ["QPS", round(result.qps, 1)],
        ["recall", round(result.recall, 4)],
        ["latency (ms)", round(result.latency_ms, 2)],
        ["latency p50 (ms)", round(result.breakdown.get("latency_p50_ms", result.latency_ms), 2)],
        ["latency p99 (ms)", round(result.breakdown.get("latency_p99_ms", result.latency_ms), 2)],
        ["memory (GiB)", round(result.memory_gib, 2)],
        ["simulated replay (s)", round(result.replay_seconds, 1)],
        ["failed", result.failed],
    ]
    if configuration["cache_policy"] != "none":
        rows.extend(
            [
                ["cache policy", configuration["cache_policy"]],
                ["cache capacity", configuration["cache_capacity"]],
                ["cache hit ratio", round(result.breakdown.get("cache_hit_ratio", 0.0), 4)],
                ["cache hits / misses",
                 f"{int(result.breakdown.get('cache_hits', 0))} / "
                 f"{int(result.breakdown.get('cache_misses', 0))}"],
            ]
        )
    if args.filter_selectivity is not None:
        rows.extend(
            [
                ["filter selectivity", round(result.breakdown.get("filter_selectivity", 0.0), 4)],
                ["filter strategy", configuration["filter_strategy"]],
                ["filter rows scanned", int(result.breakdown.get("filter_rows_scanned", 0))],
                ["filter candidates dropped", int(result.breakdown.get("filter_candidates_dropped", 0))],
                ["pre / post segments",
                 f"{int(result.breakdown.get('filter_pre_segments', 0))} / "
                 f"{int(result.breakdown.get('filter_post_segments', 0))}"],
            ]
        )
    print(format_table(["metric", "value"], rows, title=f"evaluate on {args.dataset}"))
    return 0


def _make_evaluator(args: argparse.Namespace, environment: VDMSTuningEnvironment):
    """Build the worker-pool evaluator requested by --workers (or None)."""
    if getattr(args, "workers", 1) <= 1:
        return None
    from repro.parallel import BatchEvaluator

    return BatchEvaluator.from_environment(
        environment, num_workers=args.workers, backend=args.parallel_backend
    )


def _command_tune(args: argparse.Namespace) -> int:
    if args.iterations < 1:
        _fail(f"--iterations must be >= 1 (got {args.iterations})")
    _validate_batch_options(args)
    environment = VDMSTuningEnvironment(args.dataset, seed=args.seed)
    objective = ObjectiveSpec(
        speed_metric="qp$" if args.cost_aware else "qps",
        recall_constraint=args.recall_constraint,
    )
    settings = VDTunerSettings(num_iterations=args.iterations, seed=args.seed)
    tuner = VDTuner(environment, settings=settings, objective=objective)
    evaluator = _make_evaluator(args, environment)
    try:
        report = tuner.run(batch_size=args.batch_size, evaluator=evaluator)
    finally:
        if evaluator is not None:
            evaluator.close()
    best = report.best_observation(recall_floor=args.recall_floor)
    if best is None:
        print("no configuration satisfied the requested recall floor", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(best.configuration, indent=2, default=str))
        return 0
    rows = [["best index type", best.index_type],
            ["speed objective", round(best.speed, 1)],
            ["recall", round(best.recall, 4)],
            ["iterations", len(report.history)],
            ["abandoned index types", ", ".join(report.abandoned) or "none"]]
    print(format_table(["metric", "value"], rows, title=f"VDTuner on {args.dataset}"))
    print()
    config_rows = [[name, value] for name, value in sorted(best.configuration.items())]
    print(format_table(["parameter", "value"], config_rows, title="recommended configuration"))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    if args.iterations < 1:
        _fail(f"--iterations must be >= 1 (got {args.iterations})")
    _validate_batch_options(args)
    curves = {}
    abilities = {}
    # One worker pool serves every tuner: the pool depends only on the
    # dataset and workload, which are identical across the comparison, so
    # the dataset is shipped to each worker once rather than once per tuner.
    evaluator = None
    try:
        for name in args.tuners:
            environment = VDMSTuningEnvironment(args.dataset, seed=args.seed)
            if evaluator is None:
                evaluator = _make_evaluator(args, environment)
            settings = VDTunerSettings(num_iterations=args.iterations, seed=args.seed)
            tuner = make_tuner(name, environment, seed=args.seed, settings=settings)
            report = tuner.run(
                args.iterations, batch_size=args.batch_size, evaluator=evaluator
            )
            curves[name] = speed_vs_sacrifice_curve(report.history)
            abilities[name] = tradeoff_ability(report.history)
    finally:
        if evaluator is not None:
            evaluator.close()
    rows = [
        [name]
        + [round(curves[name][s], 1) for s in DEFAULT_SACRIFICES]
        + [round(abilities[name], 1)]
        for name in args.tuners
    ]
    print(
        format_table(
            ["tuner"] + [f"sacrifice {s}" for s in DEFAULT_SACRIFICES] + ["tradeoff std"],
            rows,
            title=f"best QPS per recall sacrifice on {args.dataset} ({args.iterations} iterations)",
        )
    )
    return 0


def _command_tune_online(args: argparse.Namespace) -> int:
    from repro.core.online import OnlineTuner, OnlineTunerSettings
    from repro.workloads.dynamic import (
        DynamicTuningEnvironment,
        DynamicWorkload,
        make_drift_event,
    )
    from repro.datasets.registry import load_dataset

    steps = args.steps
    if args.drift_step is not None:
        drift_step = args.drift_step
    else:
        drift_step = min(
            max(args.retune_budget + 5, round(0.6 * max(1, steps))), max(1, steps)
        )
    _validate_tune_online_args(args, drift_step)
    severity = _tune_online_severity(args)
    events = []
    if args.drift.lower() not in ("none", "static"):
        try:
            events.append(make_drift_event(args.drift, at_step=drift_step, severity=severity))
        except KeyError as error:
            raise SystemExit(str(error)) from None
    dynamic = DynamicWorkload(load_dataset(args.dataset), events, seed=args.seed)
    environment = DynamicTuningEnvironment(dynamic, seed=args.seed)
    settings = OnlineTunerSettings(
        total_steps=steps,
        retune_budget=min(args.retune_budget, steps),
        warm_start=not args.cold_restart,
        detector_threshold=4.0,
        detector_warmup=2,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    evaluator = _make_evaluator(args, environment)
    online = OnlineTuner(environment, tuner=args.tuner, settings=settings, evaluator=evaluator)
    try:
        report = online.run()
    finally:
        if evaluator is not None:
            evaluator.close()
    summary = report.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    rows = []
    for phase in summary["phases"]:
        rows.append(
            [
                phase["phase"],
                phase["start_step"],
                phase["evaluations"],
                round(phase["hypervolume"], 1),
                phase["best_index_type"] or "-",
                round(phase["best_score"], 1) if phase["best_score"] else "-",
                phase["time_to_recover"] if phase["time_to_recover"] is not None else "-",
                phase["detection_delay"] if phase["detection_delay"] is not None else "-",
            ]
        )
    title = (
        f"online tuning on {args.dataset} "
        f"({args.drift} severity {round(severity, 3)} at step {drift_step}, "
        f"{'warm' if settings.warm_start else 'cold'} re-tuning)"
    )
    print(
        format_table(
            ["phase", "start", "evals", "pareto HV", "best index", "best score",
             "recover (evals)", "detect (evals)"],
            rows,
            title=title,
        )
    )
    if summary["detections"]:
        print(f"\ndrift detected at step(s): {', '.join(map(str, summary['detections']))}")
    else:
        print("\nno drift detected (workload static or shift below the detector threshold)")
    return 0


def _command_scenario_matrix(args: argparse.Namespace) -> int:
    from repro.experiments.scenario_matrix import run_scenario_matrix, save_matrix

    matrix = run_scenario_matrix(
        args.dataset,
        drifts=args.drifts,
        severities=args.severities,
        tuners=args.tuners,
        total_steps=args.steps,
        retune_budget=args.retune_budget,
        seed=args.seed,
    )
    rows = []
    for cell in matrix["cells"]:
        recoveries = [p["time_to_recover"] for p in cell["phases"][1:]]
        recovery = next((r for r in recoveries if r is not None), None)
        rows.append(
            [
                cell["drift"],
                cell["severity"],
                cell["tuner"],
                len(cell["phases"]),
                round(cell["phases"][-1]["hypervolume"], 1),
                recovery if recovery is not None else "-",
                "yes" if cell["detections"] else "no",
            ]
        )
    print(
        format_table(
            ["drift", "severity", "tuner", "phases", "final HV", "recover (evals)", "detected"],
            rows,
            title=f"scenario matrix on {args.dataset} (seed {args.seed})",
        )
    )
    if args.output:
        path = save_matrix(matrix, args.output)
        print(f"\nmatrix written to {path}")
    return 0


def _validate_serve_args(args: argparse.Namespace) -> None:
    """Reject invalid ``serve`` flags before binding the socket."""
    if not 0 <= args.port <= 65_535:
        _fail(f"--port must lie in [0, 65535] (got {args.port}); 0 binds an ephemeral port")
    if args.queue_depth < 1:
        _fail(f"--queue-depth must be >= 1 (got {args.queue_depth})")
    if args.serve_workers < 1:
        _fail(f"--serve-workers must be >= 1 (got {args.serve_workers})")
    if args.default_deadline_ms is not None and not args.default_deadline_ms > 0:
        _fail(
            f"--default-deadline-ms must be positive (got {args.default_deadline_ms}); "
            "drop the flag to serve without a default deadline"
        )
    if not args.drain_timeout > 0:
        _fail(f"--drain-timeout must be positive (got {args.drain_timeout})")
    if args.data_dir is not None:
        if os.path.isfile(args.data_dir):
            _fail(
                f"--data-dir {args.data_dir!r} is a file, not a directory; "
                "point it at a directory (it is created if missing)"
            )
        if args.durability_mode == "off":
            _fail(
                f"--durability-mode off contradicts --data-dir {args.data_dir!r}: "
                "a data directory requires the WAL; drop --data-dir for an "
                "in-memory server, or use --durability-mode wal|wal+checkpoint"
            )
    elif args.durability_mode in ("wal", "wal+checkpoint"):
        _fail(
            f"--durability-mode {args.durability_mode} requires --data-dir: "
            "the write-ahead log needs a directory to live in"
        )
    if args.tenant_config is not None and not os.path.isfile(args.tenant_config):
        _fail(
            f"--tenant-config {args.tenant_config!r} does not exist; "
            "point it at a JSON file mapping tenant names to specs"
        )


def _load_tenant_specs(path: str):
    """Parse a ``--tenant-config`` file, mapping errors onto actionable exits."""
    from repro.serving import load_tenant_config

    try:
        return load_tenant_config(path)
    except (OSError, ValueError) as error:
        _fail(f"--tenant-config {path!r}: {error}")


def _command_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.serving import ServingConfig, ServingFrontend

    _validate_serve_args(args)
    backend = None
    if args.data_dir is not None:
        from repro.vdms.server import VectorDBServer

        durability_mode = args.durability_mode or "wal+checkpoint"
        backend = VectorDBServer(
            SystemConfig(durability_mode=durability_mode), data_dir=args.data_dir
        )
    tenants = ()
    if args.tenant_config is not None:
        tenants = tuple(_load_tenant_specs(args.tenant_config).values())
    try:
        frontend = ServingFrontend(
            backend=backend,
            config=ServingConfig(
                host=args.host,
                port=args.port,
                queue_depth=args.queue_depth,
                workers=args.serve_workers,
                default_deadline_ms=args.default_deadline_ms,
                drain_timeout_seconds=args.drain_timeout,
                data_dir=args.data_dir,
                scheduling=args.scheduling,
                tenants=tenants,
            ),
        )
    except (ValueError, DurabilityError) as error:
        _fail(f"--tenant-config {args.tenant_config!r}: {error}")
    for spec in tenants:
        print(
            f"tenant {spec.name!r}: weight={spec.weight:g} "
            f"queue_depth={spec.queue_depth if spec.queue_depth is not None else args.queue_depth} "
            f"slo={spec.slo.to_dict()} "
            f"system_config={'override' if spec.system_config is not None else 'default'}",
            flush=True,
        )
    if args.preload is not None:
        from repro.datasets import load_dataset

        dataset = load_dataset(args.preload)
        configuration = default_configuration(index_type=args.index_type)
        params = {k: v for k, v in configuration.to_dict().items() if k != "index_type"}
        collection = frontend.backend.create_collection(
            args.collection_name, dataset.dimension, metric=dataset.metric
        )
        collection.insert(dataset.vectors)
        collection.flush()
        collection.create_index(args.index_type, params)
        print(
            f"preloaded collection {args.collection_name!r}: "
            f"{dataset.vectors.shape[0]} x {dataset.dimension} "
            f"({args.preload}, {args.index_type})",
            flush=True,
        )

    # Signal handlers only set an event; the drain itself runs outside signal
    # context below.  Handlers can only be installed from the main thread —
    # embedded callers (tests) drive request_drain() directly instead.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda *_: frontend.request_drain())
        signal.signal(signal.SIGINT, lambda *_: frontend.request_drain())

    frontend.start()
    for name in frontend.recovered_collections:
        collection = frontend.backend.get_collection(name)
        report = collection.recovery_report
        generation = "-" if report.generation is None else report.generation
        print(
            f"recovered collection {name!r}: {collection.num_rows} rows "
            f"(generation {generation}, "
            f"{report.wal_records_replayed} WAL records replayed)",
            flush=True,
        )
    print(
        f"serving on {frontend.url} "
        f"(queue_depth={args.queue_depth}, workers={args.serve_workers}, "
        f"scheduling={args.scheduling}); "
        "SIGTERM/SIGINT drains gracefully",
        flush=True,
    )
    frontend.drain_requested.wait()
    print("drain requested; finishing admitted requests...", flush=True)
    drained = frontend.drain()
    stats = frontend.admission.stats()
    print(
        f"drained (complete={drained}): served={stats.served} shed={stats.shed} "
        f"expired={stats.expired} rejected={stats.rejected} failed={stats.failed}",
        flush=True,
    )
    return 0 if drained else 1


def _validate_tune_tenants_args(args: argparse.Namespace) -> None:
    """Reject contradictory ``tune-tenants`` flags with actionable messages."""
    if args.steps < 1:
        _fail(f"--steps must be >= 1 (got {args.steps})")
    if args.retune_budget < 1:
        _fail(f"--retune-budget must be >= 1 (got {args.retune_budget})")
    if args.retune_budget > args.steps:
        _fail(
            f"--retune-budget {args.retune_budget} exceeds --steps {args.steps}: "
            "an episode cannot evaluate more configurations than the tenant "
            "has steps"
        )
    if args.budget is not None and args.budget < 1:
        _fail(
            f"--budget must be >= 1 (got {args.budget}); drop the flag to give "
            "every tenant its full per-tenant budget"
        )
    if not args.attained_penalty >= 1.0:
        _fail(
            f"--attained-penalty must be >= 1 (got {args.attained_penalty}); "
            "1 treats attained and unattained tenants alike"
        )
    if not os.path.isfile(args.tenant_config):
        _fail(
            f"--tenant-config {args.tenant_config!r} does not exist; "
            "point it at a JSON file mapping tenant names to specs"
        )


def _command_tune_tenants(args: argparse.Namespace) -> int:
    from repro.core.multi_tenant import MultiTenantTuner, TenantTunerSpec
    from repro.core.online import OnlineTunerSettings
    from repro.datasets import load_dataset

    _validate_tune_tenants_args(args)
    tenant_specs = _load_tenant_specs(args.tenant_config)
    dataset = load_dataset(args.dataset)
    specs = [
        TenantTunerSpec(
            name=spec.name,
            environment=VDMSTuningEnvironment(dataset, seed=args.seed + index),
            slo=spec.slo,
            weight=spec.weight,
            tuner=args.tuner,
            settings=OnlineTunerSettings(
                total_steps=args.steps,
                retune_budget=args.retune_budget,
                seed=args.seed + index,
            ),
        )
        for index, spec in enumerate(tenant_specs.values())
    ]
    tuner = MultiTenantTuner(
        specs, budget=args.budget, attained_penalty=args.attained_penalty
    )
    report = tuner.run()
    attained_all = all(report.attained.values())
    if args.json:
        print(json.dumps(report.summary(), indent=2, sort_keys=True))
        return 0 if attained_all else 1
    summary = report.summary()
    rows = []
    for name in sorted(summary["tenants"]):
        entry = summary["tenants"][name]
        slo = tenant_specs[name].slo
        incumbent = entry["incumbent"] or {}
        rows.append(
            [
                name,
                f"{slo.recall_floor:.2f}" if slo.recall_floor > 0 else "-",
                "QP$" if slo.cost_budget is not None else "QPS",
                f"{tenant_specs[name].weight:g}",
                entry["evaluations"],
                "yes" if entry["attained"] else "NO",
                incumbent.get("index_type", "-"),
                f"{entry['final_recall']:.4f}" if entry["final_recall"] is not None else "-",
                f"{entry['final_speed']:.1f}" if entry["final_speed"] is not None else "-",
            ]
        )
    print(
        format_table(
            ["tenant", "recall floor", "objective", "weight", "evals", "attained",
             "incumbent index", "final recall", "final speed"],
            rows,
            title=(
                f"SLO-constrained multi-tenant tuning on {args.dataset} "
                f"(budget {summary['budget']['used']}/{summary['budget']['total']}, "
                f"tuner {args.tuner})"
            ),
        )
    )
    if not attained_all:
        missed = sorted(name for name, ok in report.attained.items() if not ok)
        print(
            f"warning: {', '.join(missed)} did not attain their SLO within the "
            "budget; raise --budget or --steps, or relax the floor",
            file=sys.stderr,
        )
    return 0 if attained_all else 1


def _command_recover(args: argparse.Namespace) -> int:
    from repro.vdms.collection import Collection
    from repro.vdms.durability import DurabilityManager, OsFileSystem

    if os.path.isfile(args.data_dir):
        _fail(
            f"--data-dir {args.data_dir!r} is a file, not a directory; "
            "pass the directory a durable `serve --data-dir` wrote"
        )
    if not os.path.isdir(args.data_dir):
        _fail(
            f"--data-dir {args.data_dir!r} does not exist; "
            "pass the directory a durable `serve --data-dir` wrote"
        )
    fs = OsFileSystem()
    if args.collection is not None:
        names = [args.collection]
        if not DurabilityManager.has_state(fs, fs.join(args.data_dir, args.collection)):
            _fail(
                f"collection {args.collection!r} has no durable state under "
                f"{args.data_dir!r} (no MANIFEST-* or wal-* files); "
                "run `recover` without --collection to list what is there"
            )
    else:
        names = sorted(
            name
            for name in fs.listdir(args.data_dir)
            if DurabilityManager.has_state(fs, fs.join(args.data_dir, name))
        )
        if not names:
            _fail(
                f"--data-dir {args.data_dir!r} holds no durable collection state "
                "(no subdirectory with MANIFEST-* or wal-* files); pass the "
                "directory given to `serve --data-dir`"
            )
    reports = []
    for name in names:
        collection = Collection.recover(
            fs.join(args.data_dir, name), auto_maintenance=False
        )
        report = collection.recovery_report
        reports.append(
            {
                "collection": collection.name,
                "rows": int(collection.num_rows),
                "dimension": int(collection.dimension),
                "index_type": collection.index_type,
                "generation": (
                    None if report.generation is None else int(report.generation)
                ),
                "segments_loaded": int(report.segments_loaded),
                "rows_recovered": int(report.rows_recovered),
                "wal_records_replayed": int(report.wal_records_replayed),
                "wal_bytes_truncated": int(report.wal_bytes_truncated),
            }
        )
        collection.close()
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
        return 0
    rows = [
        [
            entry["collection"],
            entry["rows"],
            entry["index_type"] or "-",
            entry["generation"] if entry["generation"] is not None else "-",
            entry["segments_loaded"],
            entry["wal_records_replayed"],
            entry["wal_bytes_truncated"],
        ]
        for entry in reports
    ]
    print(
        format_table(
            ["collection", "rows", "index", "generation", "segments",
             "WAL replayed", "WAL truncated (bytes)"],
            rows,
            title=f"recovered from {args.data_dir}",
        )
    )
    return 0


def _validate_loadgen_args(args: argparse.Namespace) -> None:
    """Reject invalid ``loadgen`` flags before opening connections."""
    if not args.qps > 0:
        _fail(f"--qps must be positive (got {args.qps})")
    if not args.duration > 0:
        _fail(f"--duration must be positive (got {args.duration})")
    if args.top_k < 1:
        _fail(f"--top-k must be >= 1 (got {args.top_k})")
    if args.deadline_ms is not None and not args.deadline_ms > 0:
        _fail(
            f"--deadline-ms must be positive (got {args.deadline_ms}); "
            "drop the flag to send requests without deadlines"
        )


def _command_loadgen(args: argparse.Namespace) -> int:
    from repro.serving import run_load

    _validate_loadgen_args(args)
    try:
        report = run_load(
            args.url,
            args.collection,
            qps=args.qps,
            duration_seconds=args.duration,
            top_k=args.top_k,
            deadline_ms=args.deadline_ms,
            use_cache=not args.no_cache,
            seed=args.seed,
        )
    except (ConnectionError, OSError, RuntimeError) as error:
        _fail(
            f"cannot drive {args.url}: {error}; "
            "is `python -m repro.cli serve` running there?"
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    rows = [
        ["offered QPS", f"{report.offered_qps:.1f}"],
        ["achieved QPS", f"{report.achieved_qps:.1f}"],
        ["sent", report.sent],
        ["served (200)", report.served],
        ["shed (429)", report.shed],
        ["expired (504)", report.expired],
        ["rejected (503)", report.rejected],
        ["errors", report.errors],
        ["shed rate", f"{report.shed_rate:.3f}"],
        ["latency p50 (ms)", f"{report.latency_p50_ms:.2f}"],
        ["latency p99 (ms)", f"{report.latency_p99_ms:.2f}"],
        ["latency p99.9 (ms)", f"{report.latency_p999_ms:.2f}"],
        ["dispatch lag p99 (ms)", f"{report.dispatch_lag_p99_ms:.2f}"],
        ["queue depth mean/max", f"{report.queue_depth_mean:.1f} / {report.queue_depth_max}"],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"open-loop load: {args.collection} @ {args.url}",
        )
    )
    return 0


def _command_profile_scan(args: argparse.Namespace) -> int:
    """Time the exact-scan kernel stage by stage on synthetic data.

    Stages mirror the serving hot path: **cast** (float64 operand + row-norm
    materialization — paid once per sealed segment, cached afterwards),
    **gemm** (the blocked multi-query scan over the cached operand),
    **select** (top-k selection from the distance matrix) and **merge**
    (heap-merging per-shard top-k lists).  The per-(row x dim) nanosecond
    figure printed for the GEMM stage is the number
    :meth:`repro.vdms.cost_model.CostModel.calibrate_scan` accepts.
    """
    import time

    import numpy as np

    from repro.vdms.distance import (
        ScanOperand,
        pairwise_distances_blocked,
        prepare_vectors,
        top_k_select,
    )
    from repro.vdms.sharding import merge_topk

    if args.rows < 1 or args.dimension < 1 or args.queries < 1:
        _fail("--rows, --dimension and --queries must all be >= 1")
    if args.top_k < 1:
        _fail(f"--top-k must be >= 1 (got {args.top_k})")
    if args.repeats < 1:
        _fail(f"--repeats must be >= 1 (got {args.repeats})")
    if args.shards < 1:
        _fail(f"--shards must be >= 1 (got {args.shards})")

    rng = np.random.default_rng(args.seed)
    vectors = rng.standard_normal((args.rows, args.dimension)).astype(np.float32)
    queries = rng.standard_normal((args.queries, args.dimension)).astype(np.float32)
    stored = prepare_vectors(vectors, args.metric)
    prepared_queries = prepare_vectors(queries, args.metric)
    top_k = min(args.top_k, args.rows)

    def timed(stage) -> list[float]:
        samples = []
        for _ in range(args.repeats):
            start = time.perf_counter()
            stage()
            samples.append(time.perf_counter() - start)
        return samples

    # cast: what segment seal pays once so steady-state scans never do.
    cast_samples = timed(
        lambda: ScanOperand.prepare(stored, args.metric).materialize()
    )
    operand = ScanOperand.prepare(stored, args.metric).materialize()
    gemm_samples = timed(
        lambda: pairwise_distances_blocked(prepared_queries, operand, args.metric)
    )
    distances = pairwise_distances_blocked(prepared_queries, operand, args.metric)
    select_samples = timed(lambda: top_k_select(distances, top_k))
    _, ordered = top_k_select(distances, top_k)
    shard_ids = [
        rng.integers(0, args.rows, size=ordered.shape).astype(np.int64)
        for _ in range(args.shards)
    ]
    shard_distances = [
        np.sort(rng.random(ordered.shape).astype(np.float32), axis=1)
        for _ in range(args.shards)
    ]
    merge_samples = timed(lambda: merge_topk(shard_ids, shard_distances, top_k))

    row_dims = args.queries * args.rows * args.dimension
    stages = [
        ("cast", cast_samples, "once per sealed segment (cached afterwards)"),
        ("gemm", gemm_samples, "blocked scan over the cached operand"),
        ("select", select_samples, f"top-{top_k} from the distance matrix"),
        ("merge", merge_samples, f"{args.shards}-shard top-k heap merge"),
    ]
    report = []
    for name, samples, note in stages:
        best = min(samples)
        report.append(
            {
                "stage": name,
                "min_ms": best * 1e3,
                "median_ms": float(np.median(samples)) * 1e3,
                "ns_per_row_dim": (best * 1e9 / row_dims) if name in ("cast", "gemm") else None,
                "note": note,
            }
        )
    if args.json:
        print(json.dumps({
            "rows": args.rows,
            "dimension": args.dimension,
            "queries": args.queries,
            "top_k": top_k,
            "metric": args.metric,
            "repeats": args.repeats,
            "stages": report,
        }, indent=2, sort_keys=True))
        return 0
    rows = [
        [
            entry["stage"],
            f"{entry['min_ms']:.3f}",
            f"{entry['median_ms']:.3f}",
            "-" if entry["ns_per_row_dim"] is None else f"{entry['ns_per_row_dim']:.4f}",
            entry["note"],
        ]
        for entry in report
    ]
    print(format_table(
        ["stage", "min ms", "median ms", "ns/(row*dim)", "notes"],
        rows,
        title=(
            f"exact-scan profile: {args.rows} rows x {args.dimension}d, "
            f"{args.queries} queries, metric={args.metric}"
        ),
    ))
    print(
        "feed the gemm ns/(row*dim) figure to "
        "CostModel.calibrate_scan(full_ns_per_row_dim=...) to re-calibrate "
        "simulated scan latencies"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "evaluate": _command_evaluate,
        "tune": _command_tune,
        "compare": _command_compare,
        "tune-online": _command_tune_online,
        "scenario-matrix": _command_scenario_matrix,
        "serve": _command_serve,
        "tune-tenants": _command_tune_tenants,
        "recover": _command_recover,
        "loadgen": _command_loadgen,
        "profile-scan": _command_profile_scan,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
