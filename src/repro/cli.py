"""Command-line interface.

Three subcommands cover the workflows a downstream user needs most often::

    python -m repro.cli evaluate --dataset glove-small --index-type HNSW
    python -m repro.cli tune     --dataset glove-small --iterations 50 --recall-floor 0.9
    python -m repro.cli compare  --dataset glove-small --iterations 30 --tuners vdtuner random qehvi

``evaluate`` replays the workload once for a single configuration, ``tune``
runs VDTuner and prints the recommended configuration, and ``compare`` runs
several tuners with the same budget and prints a Figure 6-style table.

``tune`` and ``compare`` accept ``--batch-size Q --workers N`` to switch the
tuners to the batch-parallel engine: joint q-EHVI suggestion batches evaluated
concurrently on a worker pool (see :mod:`repro.parallel`), e.g.::

    python -m repro.cli tune --dataset glove-small --iterations 48 --batch-size 4 --workers 4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.analysis.tradeoff import DEFAULT_SACRIFICES, speed_vs_sacrifice_curve, tradeoff_ability
from repro.baselines import make_tuner
from repro.config import build_milvus_space, default_configuration
from repro.config.milvus_space import INDEX_TYPES
from repro.core import ObjectiveSpec, VDTuner, VDTunerSettings
from repro.datasets import DATASET_NAMES
from repro.workloads import VDMSTuningEnvironment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="VDTuner reproduction: evaluate, tune and compare VDMS configurations.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dataset", default="glove-small", choices=sorted(DATASET_NAMES))
        sub.add_argument("--seed", type=int, default=0, help="random seed")

    def add_batch_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--batch-size",
            type=int,
            default=1,
            metavar="Q",
            help="suggest and evaluate Q configurations per tuning iteration using "
            "joint q-EHVI batches (default 1: the paper's sequential loop); the "
            "total evaluation budget is unchanged",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="evaluate each batch on N parallel workers, each with its own "
            "VDMS server over a shared read-only dataset (default 1: in-process); "
            "results are deterministic and identical for any worker count",
        )
        sub.add_argument(
            "--parallel-backend",
            default="process",
            choices=["process", "thread", "serial"],
            help="worker-pool backend for --workers > 1 (default: process)",
        )

    evaluate = subparsers.add_parser("evaluate", help="replay the workload for one configuration")
    add_common(evaluate)
    evaluate.add_argument("--index-type", default="AUTOINDEX", choices=list(INDEX_TYPES))
    evaluate.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override a parameter of the default configuration (repeatable)",
    )

    tune = subparsers.add_parser("tune", help="run VDTuner and print the best configuration")
    add_common(tune)
    tune.add_argument("--iterations", type=int, default=50)
    tune.add_argument("--recall-floor", type=float, default=0.0,
                      help="report the best configuration with recall at or above this value")
    tune.add_argument("--recall-constraint", type=float, default=None,
                      help="optimize with a user recall-rate preference (constraint model)")
    tune.add_argument("--cost-aware", action="store_true",
                      help="optimize queries-per-dollar (QP$) instead of QPS")
    tune.add_argument("--json", action="store_true", help="print the best configuration as JSON")
    add_batch_options(tune)

    compare = subparsers.add_parser("compare", help="run several tuners with the same budget")
    add_common(compare)
    compare.add_argument("--iterations", type=int, default=30)
    add_batch_options(compare)
    compare.add_argument(
        "--tuners",
        nargs="+",
        default=["vdtuner", "random", "opentuner", "ottertune", "qehvi"],
        help="tuner registry names",
    )
    return parser


def _parse_overrides(pairs: Sequence[str], space) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"invalid override {pair!r}; expected NAME=VALUE")
        name, raw_value = pair.split("=", 1)
        if name not in space:
            raise SystemExit(f"unknown parameter {name!r}")
        parameter = space[name]
        try:
            value = type(parameter.default)(raw_value) if not isinstance(parameter.default, str) else raw_value
        except ValueError as error:
            raise SystemExit(f"cannot parse value for {name!r}: {error}") from None
        overrides[name] = value
    return overrides


def _command_evaluate(args: argparse.Namespace) -> int:
    space = build_milvus_space()
    environment = VDMSTuningEnvironment(args.dataset, space=space, seed=args.seed)
    overrides = _parse_overrides(args.overrides, space)
    configuration = default_configuration(space, index_type=args.index_type, overrides=overrides)
    result = environment.evaluate(configuration)
    rows = [
        ["index type", args.index_type],
        ["QPS", round(result.qps, 1)],
        ["recall", round(result.recall, 4)],
        ["latency (ms)", round(result.latency_ms, 2)],
        ["memory (GiB)", round(result.memory_gib, 2)],
        ["simulated replay (s)", round(result.replay_seconds, 1)],
        ["failed", result.failed],
    ]
    print(format_table(["metric", "value"], rows, title=f"evaluate on {args.dataset}"))
    return 0


def _make_evaluator(args: argparse.Namespace, environment: VDMSTuningEnvironment):
    """Build the worker-pool evaluator requested by --workers (or None)."""
    if getattr(args, "workers", 1) <= 1:
        return None
    from repro.parallel import BatchEvaluator

    return BatchEvaluator.from_environment(
        environment, num_workers=args.workers, backend=args.parallel_backend
    )


def _command_tune(args: argparse.Namespace) -> int:
    environment = VDMSTuningEnvironment(args.dataset, seed=args.seed)
    objective = ObjectiveSpec(
        speed_metric="qp$" if args.cost_aware else "qps",
        recall_constraint=args.recall_constraint,
    )
    settings = VDTunerSettings(num_iterations=args.iterations, seed=args.seed)
    tuner = VDTuner(environment, settings=settings, objective=objective)
    evaluator = _make_evaluator(args, environment)
    try:
        report = tuner.run(batch_size=args.batch_size, evaluator=evaluator)
    finally:
        if evaluator is not None:
            evaluator.close()
    best = report.best_observation(recall_floor=args.recall_floor)
    if best is None:
        print("no configuration satisfied the requested recall floor", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(best.configuration, indent=2, default=str))
        return 0
    rows = [["best index type", best.index_type],
            ["speed objective", round(best.speed, 1)],
            ["recall", round(best.recall, 4)],
            ["iterations", len(report.history)],
            ["abandoned index types", ", ".join(report.abandoned) or "none"]]
    print(format_table(["metric", "value"], rows, title=f"VDTuner on {args.dataset}"))
    print()
    config_rows = [[name, value] for name, value in sorted(best.configuration.items())]
    print(format_table(["parameter", "value"], config_rows, title="recommended configuration"))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    curves = {}
    abilities = {}
    # One worker pool serves every tuner: the pool depends only on the
    # dataset and workload, which are identical across the comparison, so
    # the dataset is shipped to each worker once rather than once per tuner.
    evaluator = None
    try:
        for name in args.tuners:
            environment = VDMSTuningEnvironment(args.dataset, seed=args.seed)
            if evaluator is None:
                evaluator = _make_evaluator(args, environment)
            settings = VDTunerSettings(num_iterations=args.iterations, seed=args.seed)
            tuner = make_tuner(name, environment, seed=args.seed, settings=settings)
            report = tuner.run(
                args.iterations, batch_size=args.batch_size, evaluator=evaluator
            )
            curves[name] = speed_vs_sacrifice_curve(report.history)
            abilities[name] = tradeoff_ability(report.history)
    finally:
        if evaluator is not None:
            evaluator.close()
    rows = [
        [name]
        + [round(curves[name][s], 1) for s in DEFAULT_SACRIFICES]
        + [round(abilities[name], 1)]
        for name in args.tuners
    ]
    print(
        format_table(
            ["tuner"] + [f"sacrifice {s}" for s in DEFAULT_SACRIFICES] + ["tradeoff std"],
            rows,
            title=f"best QPS per recall sacrifice on {args.dataset} ({args.iterations} iterations)",
        )
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "evaluate": _command_evaluate,
        "tune": _command_tune,
        "compare": _command_compare,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
