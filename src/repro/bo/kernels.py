"""Covariance kernels for Gaussian-process regression."""

from __future__ import annotations

import numpy as np

__all__ = ["Matern52Kernel", "RBFKernel", "cdist_squared"]


def cdist_squared(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between the rows of two matrices."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    a_norm = np.einsum("ij,ij->i", a, a)[:, None]
    b_norm = np.einsum("ij,ij->i", b, b)[None, :]
    squared = a_norm - 2.0 * (a @ b.T) + b_norm
    np.maximum(squared, 0.0, out=squared)
    return squared


class Matern52Kernel:
    """Matern 5/2 kernel, the surrogate kernel used by the paper (Section IV-B)."""

    def __init__(self, lengthscale: float = 0.3, variance: float = 1.0) -> None:
        if lengthscale <= 0 or variance <= 0:
            raise ValueError("lengthscale and variance must be positive")
        self.lengthscale = float(lengthscale)
        self.variance = float(variance)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        distances = np.sqrt(cdist_squared(a, b)) / self.lengthscale
        scaled = np.sqrt(5.0) * distances
        return self.variance * (1.0 + scaled + scaled**2 / 3.0) * np.exp(-scaled)

    def with_parameters(self, lengthscale: float, variance: float) -> "Matern52Kernel":
        """A copy of the kernel with new hyper-parameters."""
        return Matern52Kernel(lengthscale=lengthscale, variance=variance)


class RBFKernel:
    """Squared-exponential kernel (kept for comparison and tests)."""

    def __init__(self, lengthscale: float = 0.3, variance: float = 1.0) -> None:
        if lengthscale <= 0 or variance <= 0:
            raise ValueError("lengthscale and variance must be positive")
        self.lengthscale = float(lengthscale)
        self.variance = float(variance)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        squared = cdist_squared(a, b) / (self.lengthscale**2)
        return self.variance * np.exp(-0.5 * squared)

    def with_parameters(self, lengthscale: float, variance: float) -> "RBFKernel":
        """A copy of the kernel with new hyper-parameters."""
        return RBFKernel(lengthscale=lengthscale, variance=variance)
