"""Space-filling sampling utilities."""

from __future__ import annotations

import numpy as np

__all__ = ["latin_hypercube", "uniform_samples"]


def latin_hypercube(num_samples: int, dimension: int, rng: np.random.Generator) -> np.ndarray:
    """Latin-hypercube sample of the unit hypercube.

    Each dimension is divided into ``num_samples`` equal strata; every
    stratum is hit exactly once, and strata are matched across dimensions by
    independent random permutations.  This is the "Random (LHS)" baseline of
    the paper and the initial design of the BO-based tuners.
    """
    if num_samples <= 0 or dimension <= 0:
        raise ValueError("num_samples and dimension must be positive")
    samples = np.empty((num_samples, dimension), dtype=float)
    for column in range(dimension):
        permutation = rng.permutation(num_samples)
        offsets = rng.random(num_samples)
        samples[:, column] = (permutation + offsets) / num_samples
    return samples


def uniform_samples(num_samples: int, dimension: int, rng: np.random.Generator) -> np.ndarray:
    """Plain independent uniform samples of the unit hypercube."""
    if num_samples <= 0 or dimension <= 0:
        raise ValueError("num_samples and dimension must be positive")
    return rng.random((num_samples, dimension))
