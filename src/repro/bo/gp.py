"""Exact Gaussian-process regression.

A compact, dependency-light GP: Matern 5/2 kernel, observation noise, output
standardization, and maximum-marginal-likelihood hyper-parameter fitting via
a small multi-start grid + Nelder-Mead refinement.  At tuning scale (a few
hundred observations, dimension 16) an exact Cholesky solve per fit is
microscopic compared with one configuration evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg, optimize

from repro.bo.kernels import Matern52Kernel

__all__ = ["GaussianProcessRegressor", "GPPrediction"]


@dataclass(frozen=True)
class GPPrediction:
    """Posterior mean and standard deviation at the queried points."""

    mean: np.ndarray
    std: np.ndarray


class GaussianProcessRegressor:
    """Exact GP regression with a Matern 5/2 kernel on the unit hypercube.

    Parameters
    ----------
    noise:
        Initial observation-noise variance (in standardized output units).
    optimize_hyperparameters:
        If true (default), lengthscale, signal variance and noise are fitted
        by maximizing the log marginal likelihood every time :meth:`fit` is
        called.
    seed:
        Seed for the hyper-parameter multi-start.
    """

    def __init__(
        self,
        *,
        noise: float = 1e-4,
        optimize_hyperparameters: bool = True,
        seed: int = 0,
    ) -> None:
        self.noise = float(noise)
        self.optimize_hyperparameters = bool(optimize_hyperparameters)
        self.seed = int(seed)
        self.kernel = Matern52Kernel()
        self._X: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._y_standardized: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._cholesky: np.ndarray | None = None

    # -- fitting ---------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called with at least one observation."""
        return self._alpha is not None

    @property
    def num_observations(self) -> int:
        """Number of training observations."""
        return 0 if self._X is None else int(self._X.shape[0])

    def _standardize(self, y: np.ndarray) -> np.ndarray:
        self._y_mean = float(np.mean(y))
        spread = float(np.std(y))
        self._y_std = spread if spread > 1e-12 else 1.0
        return (y - self._y_mean) / self._y_std

    #: Bounds on the log hyper-parameters, keeping the optimizer in a sane region.
    _LOG_BOUNDS = ((-4.0, 2.0), (-4.0, 3.0), (-12.0, 0.0))

    def _negative_log_marginal_likelihood(
        self,
        log_params: np.ndarray,
        X: np.ndarray,
        y: np.ndarray,
        noise_scale: np.ndarray | None = None,
    ) -> float:
        log_params = np.clip(log_params, [b[0] for b in self._LOG_BOUNDS], [b[1] for b in self._LOG_BOUNDS])
        lengthscale, variance, noise = np.exp(log_params)
        kernel = self.kernel.with_parameters(lengthscale, variance)
        scale = np.ones(X.shape[0]) if noise_scale is None else noise_scale
        covariance = kernel(X, X) + np.diag(noise * scale + 1e-9)
        try:
            chol = linalg.cholesky(covariance, lower=True)
        except linalg.LinAlgError:
            return 1e12
        alpha = linalg.cho_solve((chol, True), y)
        log_determinant = 2.0 * np.sum(np.log(np.diag(chol)))
        value = 0.5 * float(y @ alpha) + 0.5 * log_determinant + 0.5 * X.shape[0] * np.log(2.0 * np.pi)
        return float(value)

    def _fit_hyperparameters(
        self, X: np.ndarray, y: np.ndarray, noise_scale: np.ndarray | None = None
    ) -> None:
        rng = np.random.default_rng(self.seed)
        starts = [np.log([0.3, 1.0, max(self.noise, 1e-4)])]
        for _ in range(2):
            starts.append(
                np.log(
                    [
                        float(rng.uniform(0.1, 1.0)),
                        float(rng.uniform(0.5, 2.0)),
                        float(rng.uniform(1e-4, 1e-2)),
                    ]
                )
            )
        best_value = np.inf
        best_params = starts[0]
        for start in starts:
            result = optimize.minimize(
                self._negative_log_marginal_likelihood,
                start,
                args=(X, y, noise_scale),
                method="Nelder-Mead",
                options={"maxiter": 120, "xatol": 1e-3, "fatol": 1e-3},
            )
            if result.fun < best_value:
                best_value = float(result.fun)
                best_params = result.x
        best_params = np.clip(
            best_params, [b[0] for b in self._LOG_BOUNDS], [b[1] for b in self._LOG_BOUNDS]
        )
        lengthscale, variance, noise = np.exp(best_params)
        self.kernel = self.kernel.with_parameters(float(lengthscale), float(variance))
        self.noise = float(noise)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        noise_scale: np.ndarray | None = None,
    ) -> "GaussianProcessRegressor":
        """Fit the GP to observations ``(X, y)``.

        ``X`` lives in the unit hypercube, ``y`` is a 1-D array of objective
        values (any scale; standardization is handled internally).

        ``noise_scale`` optionally re-weights observations: a per-point
        multiplier on the observation-noise variance (1 = trust normally,
        larger = trust less).  Down-weighted points act as soft priors — the
        posterior mean follows them only where no trusted observation
        disagrees — which is how warm-started re-tuning keeps stale pre-drift
        observations without letting them overrule fresh measurements.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP to zero observations")
        if noise_scale is not None:
            noise_scale = np.asarray(noise_scale, dtype=float).reshape(-1)
            if noise_scale.shape[0] != X.shape[0]:
                raise ValueError("noise_scale must have one entry per observation")
            if np.any(noise_scale <= 0):
                raise ValueError("noise_scale entries must be positive")
        self._X = X
        standardized = self._standardize(y)
        if self.optimize_hyperparameters and X.shape[0] >= 4:
            self._fit_hyperparameters(X, standardized, noise_scale)
        scale = np.ones(X.shape[0]) if noise_scale is None else noise_scale
        covariance = self.kernel(X, X) + np.diag(self.noise * scale + 1e-9)
        self._cholesky = linalg.cholesky(covariance, lower=True)
        self._y_standardized = standardized
        self._alpha = linalg.cho_solve((self._cholesky, True), standardized)
        return self

    def fantasized(self, X_new: np.ndarray, y_new: np.ndarray) -> "GaussianProcessRegressor":
        """A copy of the GP conditioned on fantasy observations ``(X_new, y_new)``.

        The copy shares the fitted hyper-parameters and output standardization
        and extends the Cholesky factor by a rank-``q`` block update — an
        :math:`O(n^2 q)` operation instead of the :math:`O((n+q)^3)` refit —
        which is what makes sequential-greedy q-EHVI batch construction cheap.
        ``y_new`` is given in original output units (e.g. the posterior mean at
        ``X_new``, the "Kriging believer" fantasy).  The original GP is left
        untouched.
        """
        if not self.is_fitted:
            raise RuntimeError("the GP has not been fitted")
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).reshape(-1)
        if X_new.shape[0] != y_new.shape[0]:
            raise ValueError("X_new and y_new must have the same number of rows")
        if X_new.shape[1] != self._X.shape[1]:
            raise ValueError("X_new has the wrong dimension")

        # Block-Cholesky update: K' = [[K, k], [k.T, K_new]] factors as
        # [[L, 0], [B, C]] with B = solve(L, k).T and C = chol(K_new - B B.T).
        cross = self.kernel(self._X, X_new)
        solved = linalg.solve_triangular(self._cholesky, cross, lower=True)
        new_block = (
            self.kernel(X_new, X_new)
            + (self.noise + 1e-9) * np.eye(X_new.shape[0])
            - solved.T @ solved
        )
        # Guard against loss of positive definiteness from near-duplicate points.
        new_chol = linalg.cholesky(new_block + 1e-10 * np.eye(X_new.shape[0]), lower=True)

        n_old, n_new = self._X.shape[0], X_new.shape[0]
        extended = np.zeros((n_old + n_new, n_old + n_new))
        extended[:n_old, :n_old] = self._cholesky
        extended[n_old:, :n_old] = solved.T
        extended[n_old:, n_old:] = new_chol

        clone = GaussianProcessRegressor(
            noise=self.noise,
            optimize_hyperparameters=False,
            seed=self.seed,
        )
        clone.kernel = self.kernel
        clone._y_mean = self._y_mean
        clone._y_std = self._y_std
        clone._X = np.vstack([self._X, X_new])
        clone._y_standardized = np.concatenate(
            [self._y_standardized, (y_new - self._y_mean) / self._y_std]
        )
        clone._cholesky = extended
        clone._alpha = linalg.cho_solve((extended, True), clone._y_standardized)
        return clone

    # -- prediction --------------------------------------------------------------

    def predict(self, X: np.ndarray) -> GPPrediction:
        """Posterior mean and standard deviation at ``X`` (original output units)."""
        if not self.is_fitted:
            raise RuntimeError("the GP has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        cross = self.kernel(X, self._X)
        mean = cross @ self._alpha
        solved = linalg.solve_triangular(self._cholesky, cross.T, lower=True)
        prior_variance = np.diag(self.kernel(X, X)).copy()
        variance = prior_variance - np.einsum("ij,ij->j", solved, solved)
        np.maximum(variance, 1e-12, out=variance)
        std = np.sqrt(variance)
        return GPPrediction(
            mean=mean * self._y_std + self._y_mean,
            std=std * self._y_std,
        )

    def predict_covariance(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and full covariance matrix at ``X`` (original units).

        Unlike :meth:`predict` this keeps the cross-covariances between the
        query points.  The shipped q-EHVI estimators follow the repository's
        Monte-Carlo convention of independent marginals (as
        :func:`repro.bo.ehvi.monte_carlo_ehvi` does); this method is the
        substrate for covariance-aware batch acquisitions that sample
        coherent outcomes for a whole candidate batch via
        :meth:`sample_joint`.
        """
        if not self.is_fitted:
            raise RuntimeError("the GP has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        cross = self.kernel(X, self._X)
        mean = cross @ self._alpha
        solved = linalg.solve_triangular(self._cholesky, cross.T, lower=True)
        covariance = self.kernel(X, X) - solved.T @ solved
        covariance = 0.5 * (covariance + covariance.T)
        covariance[np.diag_indices_from(covariance)] = np.maximum(
            np.diag(covariance), 1e-12
        )
        return mean * self._y_std + self._y_mean, covariance * self._y_std**2

    def sample(self, X: np.ndarray, num_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw marginal posterior samples at ``X``; shape ``(num_samples, len(X))``.

        Samples are drawn independently per point (marginals only), which is
        what the Monte-Carlo EHVI estimator uses.
        """
        prediction = self.predict(X)
        draws = rng.normal(size=(int(num_samples), prediction.mean.shape[0]))
        return prediction.mean[None, :] + draws * prediction.std[None, :]

    def sample_joint(self, X: np.ndarray, num_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw correlated joint posterior samples at ``X``.

        Returns an array of shape ``(num_samples, len(X))`` whose rows are
        draws from the full multivariate posterior (one Cholesky
        factorization amortized over all samples).  The shipped q-EHVI
        estimators use independent marginals (:meth:`sample`); this is the
        correlated alternative for batch acquisitions that need coherent
        outcomes across nearby points.
        """
        mean, covariance = self.predict_covariance(X)
        jitter = 1e-10 * float(np.trace(covariance)) / max(1, covariance.shape[0])
        factor = linalg.cholesky(
            covariance + max(jitter, 1e-12) * np.eye(covariance.shape[0]), lower=True
        )
        draws = rng.normal(size=(int(num_samples), mean.shape[0]))
        return mean[None, :] + draws @ factor.T
