"""Exact Gaussian-process regression.

A compact, dependency-light GP: Matern 5/2 kernel, observation noise, output
standardization, and maximum-marginal-likelihood hyper-parameter fitting via
a small multi-start grid + Nelder-Mead refinement.  At tuning scale (a few
hundred observations, dimension 16) an exact Cholesky solve per fit is
microscopic compared with one configuration evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg, optimize

from repro.bo.kernels import Matern52Kernel

__all__ = ["GaussianProcessRegressor", "GPPrediction"]


@dataclass(frozen=True)
class GPPrediction:
    """Posterior mean and standard deviation at the queried points."""

    mean: np.ndarray
    std: np.ndarray


class GaussianProcessRegressor:
    """Exact GP regression with a Matern 5/2 kernel on the unit hypercube.

    Parameters
    ----------
    noise:
        Initial observation-noise variance (in standardized output units).
    optimize_hyperparameters:
        If true (default), lengthscale, signal variance and noise are fitted
        by maximizing the log marginal likelihood every time :meth:`fit` is
        called.
    seed:
        Seed for the hyper-parameter multi-start.
    """

    def __init__(
        self,
        *,
        noise: float = 1e-4,
        optimize_hyperparameters: bool = True,
        seed: int = 0,
    ) -> None:
        self.noise = float(noise)
        self.optimize_hyperparameters = bool(optimize_hyperparameters)
        self.seed = int(seed)
        self.kernel = Matern52Kernel()
        self._X: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: np.ndarray | None = None
        self._cholesky: np.ndarray | None = None

    # -- fitting ---------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called with at least one observation."""
        return self._alpha is not None

    @property
    def num_observations(self) -> int:
        """Number of training observations."""
        return 0 if self._X is None else int(self._X.shape[0])

    def _standardize(self, y: np.ndarray) -> np.ndarray:
        self._y_mean = float(np.mean(y))
        spread = float(np.std(y))
        self._y_std = spread if spread > 1e-12 else 1.0
        return (y - self._y_mean) / self._y_std

    #: Bounds on the log hyper-parameters, keeping the optimizer in a sane region.
    _LOG_BOUNDS = ((-4.0, 2.0), (-4.0, 3.0), (-12.0, 0.0))

    def _negative_log_marginal_likelihood(self, log_params: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        log_params = np.clip(log_params, [b[0] for b in self._LOG_BOUNDS], [b[1] for b in self._LOG_BOUNDS])
        lengthscale, variance, noise = np.exp(log_params)
        kernel = self.kernel.with_parameters(lengthscale, variance)
        covariance = kernel(X, X) + (noise + 1e-9) * np.eye(X.shape[0])
        try:
            chol = linalg.cholesky(covariance, lower=True)
        except linalg.LinAlgError:
            return 1e12
        alpha = linalg.cho_solve((chol, True), y)
        log_determinant = 2.0 * np.sum(np.log(np.diag(chol)))
        value = 0.5 * float(y @ alpha) + 0.5 * log_determinant + 0.5 * X.shape[0] * np.log(2.0 * np.pi)
        return float(value)

    def _fit_hyperparameters(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        starts = [np.log([0.3, 1.0, max(self.noise, 1e-4)])]
        for _ in range(2):
            starts.append(
                np.log(
                    [
                        float(rng.uniform(0.1, 1.0)),
                        float(rng.uniform(0.5, 2.0)),
                        float(rng.uniform(1e-4, 1e-2)),
                    ]
                )
            )
        best_value = np.inf
        best_params = starts[0]
        for start in starts:
            result = optimize.minimize(
                self._negative_log_marginal_likelihood,
                start,
                args=(X, y),
                method="Nelder-Mead",
                options={"maxiter": 120, "xatol": 1e-3, "fatol": 1e-3},
            )
            if result.fun < best_value:
                best_value = float(result.fun)
                best_params = result.x
        best_params = np.clip(
            best_params, [b[0] for b in self._LOG_BOUNDS], [b[1] for b in self._LOG_BOUNDS]
        )
        lengthscale, variance, noise = np.exp(best_params)
        self.kernel = self.kernel.with_parameters(float(lengthscale), float(variance))
        self.noise = float(noise)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit the GP to observations ``(X, y)``.

        ``X`` lives in the unit hypercube, ``y`` is a 1-D array of objective
        values (any scale; standardization is handled internally).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP to zero observations")
        self._X = X
        standardized = self._standardize(y)
        if self.optimize_hyperparameters and X.shape[0] >= 4:
            self._fit_hyperparameters(X, standardized)
        covariance = self.kernel(X, X) + (self.noise + 1e-9) * np.eye(X.shape[0])
        self._cholesky = linalg.cholesky(covariance, lower=True)
        self._alpha = linalg.cho_solve((self._cholesky, True), standardized)
        return self

    # -- prediction --------------------------------------------------------------

    def predict(self, X: np.ndarray) -> GPPrediction:
        """Posterior mean and standard deviation at ``X`` (original output units)."""
        if not self.is_fitted:
            raise RuntimeError("the GP has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        cross = self.kernel(X, self._X)
        mean = cross @ self._alpha
        solved = linalg.solve_triangular(self._cholesky, cross.T, lower=True)
        prior_variance = np.diag(self.kernel(X, X)).copy()
        variance = prior_variance - np.einsum("ij,ij->j", solved, solved)
        np.maximum(variance, 1e-12, out=variance)
        std = np.sqrt(variance)
        return GPPrediction(
            mean=mean * self._y_std + self._y_mean,
            std=std * self._y_std,
        )

    def sample(self, X: np.ndarray, num_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw marginal posterior samples at ``X``; shape ``(num_samples, len(X))``.

        Samples are drawn independently per point (marginals only), which is
        what the Monte-Carlo EHVI estimator uses.
        """
        prediction = self.predict(X)
        draws = rng.normal(size=(int(num_samples), prediction.mean.shape[0]))
        return prediction.mean[None, :] + draws * prediction.std[None, :]
