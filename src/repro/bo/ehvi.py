"""Expected hypervolume improvement (EHVI), estimated by Monte-Carlo integration.

This is the acquisition function at the heart of VDTuner (Eq. 4 of the
paper) and of the qEHVI baseline.  Given independent Gaussian posteriors for
the two objectives at a set of candidate points, the estimator draws joint
samples, computes the hypervolume each sampled outcome would add to the
current Pareto front (vectorized via
:func:`repro.bo.pareto.hypervolume_improvement_2d`), and averages — the
Monte-Carlo estimator of Daulton et al. (2020) restricted to the
two-objective, sequential case the tuner needs.
"""

from __future__ import annotations

import numpy as np

from repro.bo.pareto import hypervolume_improvement_2d

__all__ = ["monte_carlo_ehvi"]


def monte_carlo_ehvi(
    candidate_means: np.ndarray,
    candidate_stds: np.ndarray,
    observed_objectives: np.ndarray,
    reference_point: np.ndarray,
    *,
    num_samples: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Estimate EHVI for every candidate point.

    Parameters
    ----------
    candidate_means, candidate_stds:
        Arrays of shape ``(num_candidates, 2)`` with the posterior mean and
        standard deviation of each objective (maximization) at every
        candidate configuration.
    observed_objectives:
        Array of shape ``(num_observed, 2)`` with the objective values of all
        evaluated configurations; only its Pareto front matters.
    reference_point:
        The 2-D reference point ``r`` of Eq. 4.
    num_samples:
        Number of Monte-Carlo samples per candidate.
    rng:
        Random generator (defaults to a fixed-seed generator so acquisition
        values are reproducible).

    Returns
    -------
    numpy.ndarray
        EHVI estimate per candidate, shape ``(num_candidates,)``.
    """
    rng = rng or np.random.default_rng(0)
    means = np.atleast_2d(np.asarray(candidate_means, dtype=float))
    stds = np.atleast_2d(np.asarray(candidate_stds, dtype=float))
    if means.shape != stds.shape or means.shape[1] != 2:
        raise ValueError("candidate means/stds must have shape (n, 2)")
    observed = np.atleast_2d(np.asarray(observed_objectives, dtype=float)) if np.size(observed_objectives) else np.empty((0, 2))
    reference = np.asarray(reference_point, dtype=float).reshape(-1)
    if reference.shape[0] != 2:
        raise ValueError("reference point must be 2-D")

    num_candidates = means.shape[0]
    if num_candidates == 0:
        return np.empty(0, dtype=float)
    num_samples = max(1, int(num_samples))

    draws = rng.normal(size=(num_samples, num_candidates, 2))
    samples = means[None, :, :] + draws * stds[None, :, :]
    flat = samples.reshape(-1, 2)
    improvements = hypervolume_improvement_2d(flat, observed, reference)
    return improvements.reshape(num_samples, num_candidates).mean(axis=0)
