"""Expected hypervolume improvement (EHVI), estimated by Monte-Carlo integration.

This is the acquisition function at the heart of VDTuner (Eq. 4 of the
paper) and of the qEHVI baseline.  Given independent Gaussian posteriors for
the two objectives at a set of candidate points, the estimators draw
samples, compute the hypervolume the sampled outcomes would add to the
current Pareto front (vectorized via
:func:`repro.bo.pareto.hypervolume_improvement_2d` and
:func:`repro.bo.pareto.joint_hypervolume_improvement_2d`), and average — the
two-objective Monte-Carlo estimators of Daulton et al. (2020):
:func:`monte_carlo_ehvi` for single points, :func:`monte_carlo_qehvi` for
joint batches, and :func:`greedy_qehvi_scores` for the sequential-greedy
batch construction the batch-parallel engine uses.

Randomness discipline: the two *top-level entry points*
(:func:`monte_carlo_ehvi` and :func:`monte_carlo_qehvi`) fall back to a
fixed-seed generator when no ``rng`` is given, so one-shot acquisition
values are reproducible.  :func:`greedy_qehvi_scores` — which batch
construction calls once per batch slot — *requires* a caller-owned
generator: a per-call fixed-seed fallback would re-draw the exact same
Monte-Carlo noise for every slot, correlating the q-EHVI batch draws and
silently biasing greedy selection toward the noise's favourites.
"""

from __future__ import annotations

import numpy as np

from repro.bo.pareto import hypervolume_improvement_2d, joint_hypervolume_improvement_2d

__all__ = ["monte_carlo_ehvi", "monte_carlo_qehvi", "greedy_qehvi_scores"]


def monte_carlo_ehvi(
    candidate_means: np.ndarray,
    candidate_stds: np.ndarray,
    observed_objectives: np.ndarray,
    reference_point: np.ndarray,
    *,
    num_samples: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Estimate EHVI for every candidate point.

    Parameters
    ----------
    candidate_means, candidate_stds:
        Arrays of shape ``(num_candidates, 2)`` with the posterior mean and
        standard deviation of each objective (maximization) at every
        candidate configuration.
    observed_objectives:
        Array of shape ``(num_observed, 2)`` with the objective values of all
        evaluated configurations; only its Pareto front matters.
    reference_point:
        The 2-D reference point ``r`` of Eq. 4.
    num_samples:
        Number of Monte-Carlo samples per candidate.
    rng:
        Random generator.  This is a top-level entry point, so it defaults
        to a fixed-seed generator for reproducible one-shot values; loops
        (batch construction, repeated scoring) must pass their own
        generator so successive calls draw fresh noise.

    Returns
    -------
    numpy.ndarray
        EHVI estimate per candidate, shape ``(num_candidates,)``.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    means = np.atleast_2d(np.asarray(candidate_means, dtype=float))
    stds = np.atleast_2d(np.asarray(candidate_stds, dtype=float))
    if means.shape != stds.shape or means.shape[1] != 2:
        raise ValueError("candidate means/stds must have shape (n, 2)")
    observed = np.atleast_2d(np.asarray(observed_objectives, dtype=float)) if np.size(observed_objectives) else np.empty((0, 2))
    reference = np.asarray(reference_point, dtype=float).reshape(-1)
    if reference.shape[0] != 2:
        raise ValueError("reference point must be 2-D")

    num_candidates = means.shape[0]
    if num_candidates == 0:
        return np.empty(0, dtype=float)
    num_samples = max(1, int(num_samples))

    draws = rng.normal(size=(num_samples, num_candidates, 2))
    samples = means[None, :, :] + draws * stds[None, :, :]
    flat = samples.reshape(-1, 2)
    improvements = hypervolume_improvement_2d(flat, observed, reference)
    return improvements.reshape(num_samples, num_candidates).mean(axis=0)


def greedy_qehvi_scores(
    prefix_means: np.ndarray,
    prefix_stds: np.ndarray,
    candidate_means: np.ndarray,
    candidate_stds: np.ndarray,
    observed_objectives: np.ndarray,
    reference_point: np.ndarray,
    *,
    num_samples: int = 64,
    rng: np.random.Generator,
) -> np.ndarray:
    """Joint q-EHVI of ``prefix + candidate`` for every candidate at once.

    The workhorse of sequential-greedy batch construction (Daulton et al.,
    2020): slot ``j+1`` of a batch is filled by maximizing the *joint* q-EHVI
    of the ``j`` points already chosen (the prefix) plus one candidate.
    Every Monte-Carlo sample draws outcomes for the prefix and all
    candidates, completes each candidate's batch with the shared prefix
    outcomes, and scores the joint hypervolume improvement in one vectorized
    :func:`~repro.bo.pareto.joint_hypervolume_improvement_2d` pass — so
    overlap between a candidate and the prefix is never double-counted,
    which is what steers batches toward diverse points.  With an empty
    prefix this reduces exactly to :func:`monte_carlo_ehvi`.

    Parameters
    ----------
    prefix_means, prefix_stds:
        Posterior marginals of the already-chosen batch points, shape
        ``(j, 2)`` (``j`` may be 0).
    candidate_means, candidate_stds:
        Posterior marginals of every candidate, shape ``(c, 2)``.
    observed_objectives:
        Objective values of the evaluated configurations, shape ``(n, 2)``.
    reference_point:
        The 2-D reference point of Eq. 4.
    num_samples:
        Number of joint Monte-Carlo samples.
    rng:
        Caller-owned random generator (required).  Batch construction calls
        this once per batch slot; the slots stay decorrelated only because
        each call advances the same generator instead of re-seeding — thread
        the generator from the tuner's top-level seed.

    Returns
    -------
    numpy.ndarray
        Joint q-EHVI estimate per candidate, shape ``(c,)``.
    """
    prefix_means = np.asarray(prefix_means, dtype=float).reshape(-1, 2)
    prefix_stds = np.asarray(prefix_stds, dtype=float).reshape(-1, 2)
    cand_means = np.atleast_2d(np.asarray(candidate_means, dtype=float))
    cand_stds = np.atleast_2d(np.asarray(candidate_stds, dtype=float))
    if prefix_means.shape != prefix_stds.shape:
        raise ValueError("prefix means/stds must have the same shape")
    if cand_means.shape != cand_stds.shape or cand_means.shape[1] != 2:
        raise ValueError("candidate means/stds must have shape (c, 2)")
    observed = (
        np.atleast_2d(np.asarray(observed_objectives, dtype=float))
        if np.size(observed_objectives)
        else np.empty((0, 2))
    )
    reference = np.asarray(reference_point, dtype=float).reshape(-1)
    if reference.shape[0] != 2:
        raise ValueError("reference point must be 2-D")
    num_candidates = cand_means.shape[0]
    if num_candidates == 0:
        return np.empty(0, dtype=float)
    num_samples = max(1, int(num_samples))
    prefix_size = prefix_means.shape[0]

    if prefix_size:
        prefix_draws = rng.normal(size=(num_samples, prefix_size, 2))
        prefix_samples = prefix_means[None, :, :] + prefix_draws * prefix_stds[None, :, :]
    candidate_draws = rng.normal(size=(num_samples, num_candidates, 2))
    candidate_samples = cand_means[None, :, :] + candidate_draws * cand_stds[None, :, :]

    if not prefix_size:
        flat = candidate_samples.reshape(-1, 2)
        improvements = hypervolume_improvement_2d(flat, observed, reference)
        return improvements.reshape(num_samples, num_candidates).mean(axis=0)

    # Stack (candidate, sample) pairs into one (c * s, j + 1, 2) batch array:
    # every candidate's batch shares the same prefix outcome per sample.
    prefix_block = np.broadcast_to(
        prefix_samples[None, :, :, :],
        (num_candidates, num_samples, prefix_size, 2),
    )
    candidate_block = candidate_samples.transpose(1, 0, 2)[:, :, None, :]
    batches = np.concatenate([prefix_block, candidate_block], axis=2)
    improvements = joint_hypervolume_improvement_2d(
        batches.reshape(num_candidates * num_samples, prefix_size + 1, 2),
        observed,
        reference,
    )
    return improvements.reshape(num_candidates, num_samples).mean(axis=1)


def monte_carlo_qehvi(
    batch_means: np.ndarray,
    batch_stds: np.ndarray,
    observed_objectives: np.ndarray,
    reference_point: np.ndarray,
    *,
    num_samples: int = 64,
    rng: np.random.Generator | None = None,
) -> float:
    """Estimate the *joint* q-EHVI of one candidate batch.

    This is the batch generalization of :func:`monte_carlo_ehvi` (Daulton et
    al., 2020): every Monte-Carlo sample draws an outcome for all ``q``
    candidates simultaneously and scores the hypervolume the whole batch adds
    over the current front, so overlapping candidates are not double-counted.
    :func:`greedy_qehvi_scores` (used by
    :meth:`repro.baselines.qehvi.QEHVITuner.suggest_batch`) maximizes this
    quantity greedily, one batch slot at a time.

    Parameters
    ----------
    batch_means, batch_stds:
        Arrays of shape ``(q, 2)``: the posterior marginals of each objective
        at every point of the batch.
    observed_objectives:
        Objective values of the evaluated configurations, shape ``(n, 2)``.
    reference_point:
        The 2-D reference point of Eq. 4.
    num_samples:
        Number of joint Monte-Carlo samples.
    rng:
        Random generator.  This is a top-level entry point, so it defaults
        to a fixed-seed generator for reproducible one-shot values; the
        generator is threaded through to :func:`greedy_qehvi_scores`.

    Returns
    -------
    float
        The Monte-Carlo q-EHVI estimate of the batch.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    means = np.atleast_2d(np.asarray(batch_means, dtype=float))
    stds = np.atleast_2d(np.asarray(batch_stds, dtype=float))
    if means.shape != stds.shape or means.shape[1] != 2:
        raise ValueError("batch means/stds must have shape (q, 2)")
    if means.shape[0] == 0:
        return 0.0
    scores = greedy_qehvi_scores(
        means[:-1],
        stds[:-1],
        means[-1:],
        stds[-1:],
        observed_objectives,
        reference_point,
        num_samples=num_samples,
        rng=rng,
    )
    return float(scores[0])
