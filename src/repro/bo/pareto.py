"""Pareto-front and hypervolume utilities (maximization convention).

Everything in this module treats *larger as better* in every objective,
matching the paper's two objectives (search speed and recall rate).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_non_dominated",
    "pareto_front",
    "pareto_ranks",
    "hypervolume_2d",
    "hypervolume_improvement_2d",
    "batch_hypervolume_2d",
    "joint_hypervolume_improvement_2d",
]


def is_non_dominated(points: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``points`` (maximization).

    A point is non-dominated if no other point is at least as good in every
    objective and strictly better in at least one.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    count = points.shape[0]
    mask = np.ones(count, dtype=bool)
    for i in range(count):
        if not mask[i]:
            continue
        others = points[np.arange(count) != i]
        dominated = np.any(
            np.all(others >= points[i], axis=1) & np.any(others > points[i], axis=1)
        )
        if dominated:
            mask[i] = False
    return mask


def pareto_front(points: np.ndarray) -> np.ndarray:
    """The non-dominated subset of ``points`` (maximization)."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.shape[0] == 0:
        return points
    return points[is_non_dominated(points)]


def pareto_ranks(points: np.ndarray) -> np.ndarray:
    """Non-dominated sorting ranks: 1 for the Pareto front, 2 for the next shell, ...

    Used by the Figure 10 reproduction to size scatter points by Pareto rank.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    count = points.shape[0]
    ranks = np.zeros(count, dtype=int)
    remaining = np.arange(count)
    current_rank = 1
    while remaining.size:
        mask = is_non_dominated(points[remaining])
        ranks[remaining[mask]] = current_rank
        remaining = remaining[~mask]
        current_rank += 1
    return ranks


def hypervolume_2d(points: np.ndarray, reference: np.ndarray) -> float:
    """Hypervolume dominated by ``points`` relative to ``reference`` (2-D, maximization).

    Points not strictly better than the reference in both objectives
    contribute nothing.  The computation is the usual sweep: sort the
    non-dominated points by the first objective descending and accumulate
    rectangles.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    reference = np.asarray(reference, dtype=float).reshape(-1)
    if reference.shape[0] != 2:
        raise ValueError("hypervolume_2d needs a 2-D reference point")
    if points.shape[0] == 0:
        return 0.0
    if points.shape[1] != 2:
        raise ValueError("hypervolume_2d needs 2-D points")
    better = points[np.all(points > reference, axis=1)]
    if better.shape[0] == 0:
        return 0.0
    front = pareto_front(better)
    order = np.argsort(-front[:, 0])
    front = front[order]
    volume = 0.0
    previous_y = reference[1]
    for x, y in front:
        if y > previous_y:
            volume += (x - reference[0]) * (y - previous_y)
            previous_y = y
    return float(volume)


def hypervolume_improvement_2d(
    points: np.ndarray, front: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Hypervolume each point would add to an existing 2-D front (maximization).

    Computes ``HV(front ∪ {p}) - HV(front)`` for every row ``p`` of
    ``points`` in a single vectorized pass, which is what makes the
    Monte-Carlo EHVI estimator cheap enough to call hundreds of times per
    tuning iteration.

    Parameters
    ----------
    points:
        Candidate outcomes, shape ``(k, 2)``.
    front:
        Current observed outcomes (any set; only its Pareto front above the
        reference matters), shape ``(m, 2)``.
    reference:
        2-D reference point.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    reference = np.asarray(reference, dtype=float).reshape(-1)
    if points.shape[1] != 2 or reference.shape[0] != 2:
        raise ValueError("hypervolume_improvement_2d works on 2-D objectives")
    front = np.atleast_2d(np.asarray(front, dtype=float)) if front is not None and np.size(front) else np.empty((0, 2))

    px = np.maximum(points[:, 0], reference[0])
    py = np.maximum(points[:, 1], reference[1])

    if front.shape[0]:
        dominating = front[np.all(front > reference, axis=1)]
    else:
        dominating = np.empty((0, 2))
    if dominating.shape[0] == 0:
        return (px - reference[0]) * (py - reference[1])

    clean_front = pareto_front(dominating)
    order = np.argsort(clean_front[:, 1])  # y ascending, x descending
    ys = clean_front[order, 1]
    xs = clean_front[order, 0]

    # Integrate over y-intervals between the front's breakpoints.  Within the
    # interval [edge_{j-1}, edge_j) the front's covering x-level is xs[j];
    # above the last breakpoint nothing covers the box.
    lower_edges = np.concatenate(([reference[1]], ys))  # length m + 1
    upper_edges = np.concatenate((ys, [np.inf]))
    cover_x = np.concatenate((xs, [reference[0]]))

    interval_top = np.minimum(py[:, None], upper_edges[None, :])
    widths = np.clip(interval_top - lower_edges[None, :], 0.0, None)
    gains = np.clip(px[:, None] - np.maximum(cover_x[None, :], reference[0]), 0.0, None)
    return np.einsum("ij,ij->i", widths, gains)


def batch_hypervolume_2d(point_sets: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Hypervolume of many 2-D point sets at once (maximization).

    ``point_sets`` has shape ``(s, n, 2)``: ``s`` independent sets of ``n``
    points each.  Returns the ``(s,)`` vector of hypervolumes relative to
    ``reference``.  The sweep runs fully vectorized across all sets — sort
    each set by the first objective descending, then accumulate the strips
    ``(x - r_x) * max(0, y - running_max_y)`` with a single
    ``np.maximum.accumulate`` — which is what keeps the joint q-EHVI
    Monte-Carlo estimator cheap for hundreds of samples.
    """
    point_sets = np.asarray(point_sets, dtype=float)
    if point_sets.ndim != 3 or point_sets.shape[2] != 2:
        raise ValueError("batch_hypervolume_2d needs an (s, n, 2) array")
    reference = np.asarray(reference, dtype=float).reshape(-1)
    if reference.shape[0] != 2:
        raise ValueError("batch_hypervolume_2d needs a 2-D reference point")
    if point_sets.shape[1] == 0:
        return np.zeros(point_sets.shape[0], dtype=float)

    clipped = np.maximum(point_sets, reference[None, None, :])
    # Sort each set by x descending with y descending as tie-breaker (two
    # stable argsorts), so dominated duplicates contribute zero strips.
    by_y = np.argsort(-clipped[:, :, 1], axis=1, kind="stable")
    clipped = np.take_along_axis(clipped, by_y[:, :, None], axis=1)
    by_x = np.argsort(-clipped[:, :, 0], axis=1, kind="stable")
    clipped = np.take_along_axis(clipped, by_x[:, :, None], axis=1)

    x = clipped[:, :, 0]
    y = clipped[:, :, 1]
    running_max = np.maximum.accumulate(y, axis=1)
    previous = np.concatenate(
        [np.full((y.shape[0], 1), reference[1]), running_max[:, :-1]], axis=1
    )
    strips = (x - reference[0]) * np.clip(y - previous, 0.0, None)
    return strips.sum(axis=1)


def joint_hypervolume_improvement_2d(
    batches: np.ndarray, front: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Joint hypervolume improvement of whole batches over an existing front.

    For every batch ``B`` (a ``(q, 2)`` slice of the ``(s, q, 2)`` input)
    computes ``HV(front ∪ B) - HV(front)`` — the quantity the q-EHVI
    acquisition integrates over posterior samples.  Unlike scoring the ``q``
    points independently, the joint improvement does not double-count
    overlapping regions, which is what rewards *diverse* batches.
    """
    batches = np.asarray(batches, dtype=float)
    if batches.ndim != 3 or batches.shape[2] != 2:
        raise ValueError("joint_hypervolume_improvement_2d needs an (s, q, 2) array")
    reference = np.asarray(reference, dtype=float).reshape(-1)
    front = (
        np.atleast_2d(np.asarray(front, dtype=float))
        if front is not None and np.size(front)
        else np.empty((0, 2))
    )
    base = hypervolume_2d(front, reference) if front.shape[0] else 0.0
    if front.shape[0]:
        tiled = np.broadcast_to(
            front[None, :, :], (batches.shape[0],) + front.shape
        )
        combined = np.concatenate([tiled, batches], axis=1)
    else:
        combined = batches
    return batch_hypervolume_2d(combined, reference) - base
