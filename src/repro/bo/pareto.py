"""Pareto-front and hypervolume utilities (maximization convention).

Everything in this module treats *larger as better* in every objective,
matching the paper's two objectives (search speed and recall rate).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_non_dominated",
    "pareto_front",
    "pareto_ranks",
    "hypervolume_2d",
    "hypervolume_improvement_2d",
]


def is_non_dominated(points: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``points`` (maximization).

    A point is non-dominated if no other point is at least as good in every
    objective and strictly better in at least one.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    count = points.shape[0]
    mask = np.ones(count, dtype=bool)
    for i in range(count):
        if not mask[i]:
            continue
        others = points[np.arange(count) != i]
        dominated = np.any(
            np.all(others >= points[i], axis=1) & np.any(others > points[i], axis=1)
        )
        if dominated:
            mask[i] = False
    return mask


def pareto_front(points: np.ndarray) -> np.ndarray:
    """The non-dominated subset of ``points`` (maximization)."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.shape[0] == 0:
        return points
    return points[is_non_dominated(points)]


def pareto_ranks(points: np.ndarray) -> np.ndarray:
    """Non-dominated sorting ranks: 1 for the Pareto front, 2 for the next shell, ...

    Used by the Figure 10 reproduction to size scatter points by Pareto rank.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    count = points.shape[0]
    ranks = np.zeros(count, dtype=int)
    remaining = np.arange(count)
    current_rank = 1
    while remaining.size:
        mask = is_non_dominated(points[remaining])
        ranks[remaining[mask]] = current_rank
        remaining = remaining[~mask]
        current_rank += 1
    return ranks


def hypervolume_2d(points: np.ndarray, reference: np.ndarray) -> float:
    """Hypervolume dominated by ``points`` relative to ``reference`` (2-D, maximization).

    Points not strictly better than the reference in both objectives
    contribute nothing.  The computation is the usual sweep: sort the
    non-dominated points by the first objective descending and accumulate
    rectangles.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    reference = np.asarray(reference, dtype=float).reshape(-1)
    if reference.shape[0] != 2:
        raise ValueError("hypervolume_2d needs a 2-D reference point")
    if points.shape[0] == 0:
        return 0.0
    if points.shape[1] != 2:
        raise ValueError("hypervolume_2d needs 2-D points")
    better = points[np.all(points > reference, axis=1)]
    if better.shape[0] == 0:
        return 0.0
    front = pareto_front(better)
    order = np.argsort(-front[:, 0])
    front = front[order]
    volume = 0.0
    previous_y = reference[1]
    for x, y in front:
        if y > previous_y:
            volume += (x - reference[0]) * (y - previous_y)
            previous_y = y
    return float(volume)


def hypervolume_improvement_2d(
    points: np.ndarray, front: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Hypervolume each point would add to an existing 2-D front (maximization).

    Computes ``HV(front ∪ {p}) - HV(front)`` for every row ``p`` of
    ``points`` in a single vectorized pass, which is what makes the
    Monte-Carlo EHVI estimator cheap enough to call hundreds of times per
    tuning iteration.

    Parameters
    ----------
    points:
        Candidate outcomes, shape ``(k, 2)``.
    front:
        Current observed outcomes (any set; only its Pareto front above the
        reference matters), shape ``(m, 2)``.
    reference:
        2-D reference point.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    reference = np.asarray(reference, dtype=float).reshape(-1)
    if points.shape[1] != 2 or reference.shape[0] != 2:
        raise ValueError("hypervolume_improvement_2d works on 2-D objectives")
    front = np.atleast_2d(np.asarray(front, dtype=float)) if front is not None and np.size(front) else np.empty((0, 2))

    px = np.maximum(points[:, 0], reference[0])
    py = np.maximum(points[:, 1], reference[1])

    if front.shape[0]:
        dominating = front[np.all(front > reference, axis=1)]
    else:
        dominating = np.empty((0, 2))
    if dominating.shape[0] == 0:
        return (px - reference[0]) * (py - reference[1])

    clean_front = pareto_front(dominating)
    order = np.argsort(clean_front[:, 1])  # y ascending, x descending
    ys = clean_front[order, 1]
    xs = clean_front[order, 0]

    # Integrate over y-intervals between the front's breakpoints.  Within the
    # interval [edge_{j-1}, edge_j) the front's covering x-level is xs[j];
    # above the last breakpoint nothing covers the box.
    lower_edges = np.concatenate(([reference[1]], ys))  # length m + 1
    upper_edges = np.concatenate((ys, [np.inf]))
    cover_x = np.concatenate((xs, [reference[0]]))

    interval_top = np.minimum(py[:, None], upper_edges[None, :])
    widths = np.clip(interval_top - lower_edges[None, :], 0.0, None)
    gains = np.clip(px[:, None] - np.maximum(cover_x[None, :], reference[0]), 0.0, None)
    return np.einsum("ij,ij->i", widths, gains)
