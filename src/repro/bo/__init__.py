"""Bayesian-optimization substrate.

A from-scratch implementation of the machinery VDTuner builds on (the paper
uses BoTorch, which is unavailable offline): Gaussian-process regression with
a Matern 5/2 kernel, Latin-hypercube sampling, Pareto-front and hypervolume
utilities, and the acquisition functions used by the tuners — expected
improvement (EI), constrained EI and Monte-Carlo expected hypervolume
improvement (EHVI / qEHVI).
"""

from repro.bo.kernels import Matern52Kernel, RBFKernel
from repro.bo.gp import GaussianProcessRegressor
from repro.bo.sampling import latin_hypercube, uniform_samples
from repro.bo.pareto import (
    batch_hypervolume_2d,
    hypervolume_2d,
    is_non_dominated,
    joint_hypervolume_improvement_2d,
    pareto_front,
    pareto_ranks,
)
from repro.bo.acquisition import expected_improvement, probability_of_feasibility, upper_confidence_bound
from repro.bo.ehvi import greedy_qehvi_scores, monte_carlo_ehvi, monte_carlo_qehvi

__all__ = [
    "GaussianProcessRegressor",
    "Matern52Kernel",
    "RBFKernel",
    "batch_hypervolume_2d",
    "expected_improvement",
    "greedy_qehvi_scores",
    "hypervolume_2d",
    "is_non_dominated",
    "joint_hypervolume_improvement_2d",
    "latin_hypercube",
    "monte_carlo_ehvi",
    "monte_carlo_qehvi",
    "pareto_front",
    "pareto_ranks",
    "probability_of_feasibility",
    "uniform_samples",
    "upper_confidence_bound",
]
