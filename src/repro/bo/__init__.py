"""Bayesian-optimization substrate.

A from-scratch implementation of the machinery VDTuner builds on (the paper
uses BoTorch, which is unavailable offline): Gaussian-process regression with
a Matern 5/2 kernel, Latin-hypercube sampling, Pareto-front and hypervolume
utilities, and the acquisition functions used by the tuners — expected
improvement (EI), constrained EI and Monte-Carlo expected hypervolume
improvement (EHVI / qEHVI).
"""

from repro.bo.kernels import Matern52Kernel, RBFKernel
from repro.bo.gp import GaussianProcessRegressor
from repro.bo.sampling import latin_hypercube, uniform_samples
from repro.bo.pareto import (
    hypervolume_2d,
    is_non_dominated,
    pareto_front,
    pareto_ranks,
)
from repro.bo.acquisition import expected_improvement, probability_of_feasibility, upper_confidence_bound
from repro.bo.ehvi import monte_carlo_ehvi

__all__ = [
    "GaussianProcessRegressor",
    "Matern52Kernel",
    "RBFKernel",
    "expected_improvement",
    "hypervolume_2d",
    "is_non_dominated",
    "latin_hypercube",
    "monte_carlo_ehvi",
    "pareto_front",
    "pareto_ranks",
    "probability_of_feasibility",
    "uniform_samples",
    "upper_confidence_bound",
]
