"""Single-objective acquisition functions.

These operate on Gaussian posterior summaries (mean and standard deviation)
under the *maximization* convention.  They are used by the OtterTune-style
baseline (EI over a weighted-sum objective) and by VDTuner's constraint model
(EI times the probability of satisfying the recall constraint, Eq. 7).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "expected_improvement",
    "probability_of_feasibility",
    "upper_confidence_bound",
]


def expected_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best_observed: float,
    *,
    xi: float = 0.0,
) -> np.ndarray:
    """Expected improvement over ``best_observed`` (maximization).

    Parameters
    ----------
    mean, std:
        Posterior mean and standard deviation at the candidate points.
    best_observed:
        Incumbent objective value.
    xi:
        Optional exploration margin.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    std = np.maximum(std, 1e-12)
    improvement = mean - best_observed - xi
    z = improvement / std
    value = improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)
    return np.maximum(value, 0.0)


def probability_of_feasibility(
    mean: np.ndarray,
    std: np.ndarray,
    threshold: float,
) -> np.ndarray:
    """Probability that a Gaussian objective exceeds ``threshold``.

    Used by the constraint model: the probability that the recall rate of a
    candidate configuration exceeds the user-defined limit.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    return stats.norm.cdf((mean - threshold) / std)


def upper_confidence_bound(mean: np.ndarray, std: np.ndarray, *, beta: float = 2.0) -> np.ndarray:
    """GP-UCB acquisition (maximization)."""
    if beta < 0:
        raise ValueError("beta must be non-negative")
    return np.asarray(mean, dtype=float) + beta * np.asarray(std, dtype=float)
