"""VDTuner reproduction: automated performance tuning for vector data management systems.

This package reproduces the system described in *VDTuner: Automated
Performance Tuning for Vector Data Management Systems* (ICDE 2024).  It
contains:

``repro.vdms``
    A self-contained, Milvus-like vector data management system with seven
    index types (FLAT, IVF_FLAT, IVF_SQ8, IVF_PQ, HNSW, SCANN, AUTOINDEX),
    a segment/insert-buffer storage layer and a deterministic cost model.

``repro.config``
    Parameter and configuration-space machinery, including the holistic
    Milvus-like tuning space used throughout the paper (its 16 dimensions
    plus the serving-topology parameters of the sharded engine).

``repro.datasets`` and ``repro.workloads``
    Synthetic stand-ins for the paper's benchmark datasets and the workload
    replayer that turns a configuration into ``(QPS, recall, memory)``.

``repro.bo``
    A from-scratch Bayesian-optimization substrate: Gaussian-process
    regression with a Matern 5/2 kernel, Pareto/hypervolume utilities and
    acquisition functions (EI, constrained EI, Monte-Carlo EHVI).

``repro.core``
    VDTuner itself: the holistic polling surrogate, NPI normalization,
    successive-abandon budget allocation, constraint model, bootstrapping
    and cost-aware objectives.

``repro.baselines``
    Re-implementations of the baseline tuners the paper compares against.

``repro.parallel``
    The batch-parallel evaluation engine: a worker pool
    (:class:`~repro.parallel.BatchEvaluator`) that replays joint q-EHVI
    suggestion batches concurrently, with deterministic results and per-task
    failure isolation.

``repro.analysis`` and ``repro.experiments``
    Metrics, attribution and the experiment harness that regenerates every
    table and figure of the paper's evaluation section.
"""

from repro.config import (
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    FloatParameter,
    IntParameter,
    build_milvus_space,
)
from repro.core import (
    CusumDriftDetector,
    ObjectiveSpec,
    OnlineTuner,
    OnlineTunerSettings,
    VDTuner,
    VDTunerSettings,
)
from repro.baselines import make_tuner
from repro.datasets import DatasetSpec, load_dataset
from repro.parallel import BatchEvaluator
from repro.vdms import VectorDBServer
from repro.workloads import (
    DriftEvent,
    DynamicTuningEnvironment,
    DynamicWorkload,
    EvaluationResult,
    SearchWorkload,
    VDMSTuningEnvironment,
    make_drift_event,
)

__version__ = "1.2.0"

__all__ = [
    "BatchEvaluator",
    "CategoricalParameter",
    "Configuration",
    "ConfigurationSpace",
    "CusumDriftDetector",
    "DatasetSpec",
    "DriftEvent",
    "DynamicTuningEnvironment",
    "DynamicWorkload",
    "EvaluationResult",
    "FloatParameter",
    "IntParameter",
    "ObjectiveSpec",
    "OnlineTuner",
    "OnlineTunerSettings",
    "SearchWorkload",
    "VDMSTuningEnvironment",
    "VDTuner",
    "VDTunerSettings",
    "VectorDBServer",
    "make_drift_event",
    "make_tuner",
    "build_milvus_space",
    "load_dataset",
    "__version__",
]
