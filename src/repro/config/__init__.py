"""Parameter and configuration-space machinery for VDMS tuning.

The tuners in this repository all operate on a :class:`ConfigurationSpace`,
which is an ordered collection of typed parameters.  A point in the space is
a :class:`Configuration` (an immutable mapping from parameter name to value).
Spaces know how to encode configurations into the unit hypercube (the
representation used by the Gaussian-process models) and decode them back.

The concrete space used throughout the paper reproduction — index type,
eight index parameters, seven system parameters and three serving-topology
parameters of a Milvus-like VDMS —
is built by :func:`build_milvus_space`.
"""

from repro.config.parameters import (
    BoolParameter,
    CategoricalParameter,
    FloatParameter,
    IntParameter,
    Parameter,
)
from repro.config.space import Configuration, ConfigurationSpace
from repro.config.milvus_space import (
    INDEX_PARAMETERS,
    INDEX_TYPES,
    SYSTEM_PARAMETERS,
    build_milvus_space,
    default_configuration,
    parameters_for_index,
)

__all__ = [
    "BoolParameter",
    "CategoricalParameter",
    "Configuration",
    "ConfigurationSpace",
    "FloatParameter",
    "INDEX_PARAMETERS",
    "INDEX_TYPES",
    "IntParameter",
    "Parameter",
    "SYSTEM_PARAMETERS",
    "build_milvus_space",
    "default_configuration",
    "parameters_for_index",
]
