"""Typed tunable parameters.

Each parameter knows how to validate a value, clip it into range, sample it
uniformly, and map it to and from a normalized ``[0, 1]`` coordinate.  The
normalized representation is what the Gaussian-process surrogate models and
the numerical optimizers work with; the raw representation is what the VDMS
substrate consumes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "FloatParameter",
    "IntParameter",
    "CategoricalParameter",
    "BoolParameter",
]


class Parameter(ABC):
    """Abstract base class for a single tunable parameter."""

    name: str
    default: Any

    @abstractmethod
    def validate(self, value: Any) -> bool:
        """Return ``True`` if ``value`` is a legal value for this parameter."""

    @abstractmethod
    def clip(self, value: Any) -> Any:
        """Coerce ``value`` into the legal range, returning the nearest legal value."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniform random legal value."""

    @abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map a legal value to a coordinate in ``[0, 1]``."""

    @abstractmethod
    def from_unit(self, unit: float) -> Any:
        """Map a ``[0, 1]`` coordinate back to a legal value."""

    def grid(self, resolution: int) -> list[Any]:
        """Return up to ``resolution`` representative values spanning the range."""
        resolution = max(2, int(resolution))
        points = np.linspace(0.0, 1.0, resolution)
        values = []
        for point in points:
            value = self.from_unit(float(point))
            if value not in values:
                values.append(value)
        return values

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r}, default={self.default!r})"


@dataclass(repr=False)
class FloatParameter(Parameter):
    """A continuous parameter on a closed interval.

    Parameters
    ----------
    name:
        Parameter identifier, unique within a space.
    low, high:
        Inclusive bounds.
    default:
        Default value; must lie within the bounds.
    log_scale:
        If true, the unit-interval mapping is logarithmic, which is the
        appropriate encoding for parameters whose effect is multiplicative
        (for example buffer sizes).

    Examples
    --------
    >>> p = FloatParameter("segment_seal_proportion", low=0.1, high=1.0, default=0.25)
    >>> p.validate(0.5), p.clip(2.0)
    (True, 1.0)
    >>> round(p.to_unit(0.55), 2)
    0.5
    """

    name: str
    low: float
    high: float
    default: float
    log_scale: bool = False

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"{self.name}: low ({self.low}) must be < high ({self.high})")
        if self.log_scale and self.low <= 0:
            raise ValueError(f"{self.name}: log-scale parameters require a positive lower bound")
        if not self.validate(self.default):
            raise ValueError(f"{self.name}: default {self.default} outside [{self.low}, {self.high}]")

    def validate(self, value: Any) -> bool:
        if not isinstance(value, (int, float, np.integer, np.floating)):
            return False
        return self.low <= float(value) <= self.high and math.isfinite(float(value))

    def clip(self, value: Any) -> float:
        return float(min(self.high, max(self.low, float(value))))

    def sample(self, rng: np.random.Generator) -> float:
        return self.from_unit(float(rng.random()))

    def to_unit(self, value: Any) -> float:
        value = self.clip(value)
        if self.log_scale:
            return (math.log(value) - math.log(self.low)) / (math.log(self.high) - math.log(self.low))
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, unit: float) -> float:
        unit = min(1.0, max(0.0, float(unit)))
        if self.log_scale:
            return float(math.exp(math.log(self.low) + unit * (math.log(self.high) - math.log(self.low))))
        return float(self.low + unit * (self.high - self.low))


@dataclass(repr=False)
class IntParameter(Parameter):
    """An integer parameter on a closed interval.

    Examples
    --------
    >>> p = IntParameter("nlist", low=16, high=4096, default=128, log_scale=True)
    >>> p.validate(1024), p.validate(5000)
    (True, False)
    >>> p.from_unit(0.0), p.from_unit(1.0)
    (16, 4096)
    """

    name: str
    low: int
    high: int
    default: int
    log_scale: bool = False

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"{self.name}: low ({self.low}) must be < high ({self.high})")
        if self.log_scale and self.low <= 0:
            raise ValueError(f"{self.name}: log-scale parameters require a positive lower bound")
        if not self.validate(self.default):
            raise ValueError(f"{self.name}: default {self.default} outside [{self.low}, {self.high}]")

    def validate(self, value: Any) -> bool:
        if isinstance(value, bool):
            return False
        if not isinstance(value, (int, np.integer)):
            return False
        return self.low <= int(value) <= self.high

    def clip(self, value: Any) -> int:
        return int(min(self.high, max(self.low, int(round(float(value))))))

    def sample(self, rng: np.random.Generator) -> int:
        return self.from_unit(float(rng.random()))

    def to_unit(self, value: Any) -> float:
        value = self.clip(value)
        if self.log_scale:
            return (math.log(value) - math.log(self.low)) / (math.log(self.high) - math.log(self.low))
        if self.high == self.low:
            return 0.0
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, unit: float) -> int:
        unit = min(1.0, max(0.0, float(unit)))
        if self.log_scale:
            raw = math.exp(math.log(self.low) + unit * (math.log(self.high) - math.log(self.low)))
        else:
            raw = self.low + unit * (self.high - self.low)
        return int(min(self.high, max(self.low, int(round(raw)))))


@dataclass(repr=False)
class CategoricalParameter(Parameter):
    """A parameter drawn from a finite, ordered set of choices.

    The unit-interval encoding places each choice at the centre of an equal
    sub-interval, which keeps encode/decode round trips exact.

    Examples
    --------
    >>> p = CategoricalParameter("index_type", choices=["FLAT", "HNSW"], default="HNSW")
    >>> p.validate("HNSW"), p.clip("IVF_PQ")
    (True, 'HNSW')
    >>> p.from_unit(p.to_unit("FLAT"))
    'FLAT'
    """

    name: str
    choices: Sequence[Any]
    default: Any = field(default=None)

    def __post_init__(self) -> None:
        self.choices = list(self.choices)
        if len(self.choices) < 2:
            raise ValueError(f"{self.name}: need at least two choices")
        if len(set(map(str, self.choices))) != len(self.choices):
            raise ValueError(f"{self.name}: choices must be unique")
        if self.default is None:
            self.default = self.choices[0]
        if not self.validate(self.default):
            raise ValueError(f"{self.name}: default {self.default!r} not among choices")

    def validate(self, value: Any) -> bool:
        return value in self.choices

    def clip(self, value: Any) -> Any:
        if value in self.choices:
            return value
        return self.default

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(0, len(self.choices)))]

    def index_of(self, value: Any) -> int:
        """Return the position of ``value`` within the choice list."""
        return self.choices.index(value)

    def to_unit(self, value: Any) -> float:
        idx = self.index_of(self.clip(value))
        return (idx + 0.5) / len(self.choices)

    def from_unit(self, unit: float) -> Any:
        unit = min(1.0, max(0.0, float(unit)))
        idx = min(len(self.choices) - 1, int(unit * len(self.choices)))
        return self.choices[idx]

    def grid(self, resolution: int) -> list[Any]:
        return list(self.choices)


class BoolParameter(CategoricalParameter):
    """A boolean parameter, expressed as a two-choice categorical."""

    def __init__(self, name: str, default: bool = False) -> None:
        super().__init__(name=name, choices=[False, True], default=bool(default))
