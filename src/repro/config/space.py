"""Configuration spaces and configurations.

A :class:`ConfigurationSpace` is an ordered collection of named parameters
(see :mod:`repro.config.parameters`).  A :class:`Configuration` is one point
of the space: a read-only mapping from parameter name to value.

The space provides the two encodings used across the repository:

* the *raw* encoding (a dict of native values) consumed by the VDMS
  substrate, and
* the *unit-hypercube* encoding (a ``numpy`` vector in ``[0, 1]^d``) consumed
  by the Gaussian-process surrogates and the numerical optimizers.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any, Iterable, Sequence

import numpy as np

from repro.config.parameters import Parameter

__all__ = ["Configuration", "ConfigurationSpace"]


class Configuration(Mapping):
    """An immutable assignment of values to every parameter of a space.

    Examples
    --------
    >>> from repro import build_milvus_space
    >>> space = build_milvus_space()
    >>> configuration = space.configuration({"index_type": "HNSW"}, complete=False)
    >>> configuration["index_type"]
    'HNSW'
    >>> configuration.replace(hnsw_m=32)["hnsw_m"]
    32
    >>> configuration.to_unit_vector().shape
    (16,)
    """

    __slots__ = ("_space", "_values")

    def __init__(self, space: "ConfigurationSpace", values: Mapping[str, Any]):
        self._space = space
        missing = [name for name in space.names if name not in values]
        if missing:
            raise KeyError(f"configuration missing parameters: {missing}")
        unknown = [name for name in values if name not in space]
        if unknown:
            raise KeyError(f"configuration has unknown parameters: {unknown}")
        frozen = {}
        for name in space.names:
            parameter = space[name]
            value = values[name]
            if not parameter.validate(value):
                raise ValueError(f"invalid value {value!r} for parameter {name!r}")
            frozen[name] = value
        self._values = frozen

    @property
    def space(self) -> "ConfigurationSpace":
        """The space this configuration belongs to."""
        return self._space

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, str(v)) for k, v in self._values.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        body = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Configuration({body})"

    def to_dict(self) -> dict[str, Any]:
        """Return a plain mutable dict copy of the assignment."""
        return dict(self._values)

    def replace(self, **updates: Any) -> "Configuration":
        """Return a new configuration with some values replaced."""
        merged = dict(self._values)
        merged.update(updates)
        return Configuration(self._space, merged)

    def to_unit_vector(self) -> np.ndarray:
        """Encode this configuration into the unit hypercube."""
        return self._space.encode(self)


class ConfigurationSpace:
    """An ordered set of parameters defining a search space.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import ConfigurationSpace, IntParameter, FloatParameter
    >>> space = ConfigurationSpace([
    ...     IntParameter("ef_search", low=8, high=512, default=64, log_scale=True),
    ...     FloatParameter("seal_proportion", low=0.1, high=1.0, default=0.25),
    ... ])
    >>> space.dimension
    2
    >>> vector = space.encode(space.default_configuration())
    >>> space.decode(vector)["ef_search"]
    64
    >>> space.sample_configuration(np.random.default_rng(0))["seal_proportion"] <= 1.0
    True
    """

    def __init__(self, parameters: Iterable[Parameter], name: str = "space"):
        self.name = name
        self._parameters: dict[str, Parameter] = {}
        for parameter in parameters:
            if parameter.name in self._parameters:
                raise ValueError(f"duplicate parameter name {parameter.name!r}")
            self._parameters[parameter.name] = parameter
        if not self._parameters:
            raise ValueError("a configuration space needs at least one parameter")

    # -- container protocol -------------------------------------------------

    @property
    def names(self) -> list[str]:
        """Parameter names in definition order."""
        return list(self._parameters.keys())

    @property
    def parameters(self) -> list[Parameter]:
        """Parameters in definition order."""
        return list(self._parameters.values())

    @property
    def dimension(self) -> int:
        """Number of parameters (the dimension of the unit hypercube)."""
        return len(self._parameters)

    def __contains__(self, name: object) -> bool:
        return name in self._parameters

    def __getitem__(self, name: str) -> Parameter:
        return self._parameters[name]

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters.values())

    def __len__(self) -> int:
        return len(self._parameters)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ConfigurationSpace(name={self.name!r}, dimension={self.dimension})"

    # -- construction of configurations -------------------------------------

    def default_configuration(self) -> Configuration:
        """Return the configuration made of every parameter's default."""
        return Configuration(self, {p.name: p.default for p in self.parameters})

    def configuration(self, values: Mapping[str, Any], *, complete: bool = True) -> Configuration:
        """Build a configuration from ``values``.

        If ``complete`` is false, parameters absent from ``values`` fall back
        to their defaults — the usual way callers specify only the parameters
        they care about.
        """
        if complete:
            return Configuration(self, values)
        merged = {p.name: p.default for p in self.parameters}
        for key, value in values.items():
            if key not in self._parameters:
                raise KeyError(f"unknown parameter {key!r}")
            merged[key] = value
        return Configuration(self, merged)

    def sample_configuration(self, rng: np.random.Generator) -> Configuration:
        """Draw one uniform random configuration."""
        return Configuration(self, {p.name: p.sample(rng) for p in self.parameters})

    def sample_configurations(self, count: int, rng: np.random.Generator) -> list[Configuration]:
        """Draw ``count`` independent uniform random configurations."""
        return [self.sample_configuration(rng) for _ in range(int(count))]

    # -- encodings -----------------------------------------------------------

    def encode(self, configuration: Mapping[str, Any]) -> np.ndarray:
        """Encode a configuration (or plain mapping) into ``[0, 1]^d``."""
        vector = np.empty(self.dimension, dtype=float)
        for position, parameter in enumerate(self.parameters):
            vector[position] = parameter.to_unit(configuration[parameter.name])
        return vector

    def encode_many(self, configurations: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode a sequence of configurations into an ``(n, d)`` array."""
        if not configurations:
            return np.empty((0, self.dimension), dtype=float)
        return np.vstack([self.encode(c) for c in configurations])

    def decode(self, vector: np.ndarray) -> Configuration:
        """Decode a point of the unit hypercube into a configuration."""
        vector = np.asarray(vector, dtype=float).reshape(-1)
        if vector.shape[0] != self.dimension:
            raise ValueError(
                f"expected a vector of dimension {self.dimension}, got {vector.shape[0]}"
            )
        values = {
            parameter.name: parameter.from_unit(float(vector[position]))
            for position, parameter in enumerate(self.parameters)
        }
        return Configuration(self, values)

    def decode_many(self, matrix: np.ndarray) -> list[Configuration]:
        """Decode an ``(n, d)`` array into a list of configurations."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("expected a 2-D array of unit-hypercube points")
        return [self.decode(row) for row in matrix]

    # -- restricted views ----------------------------------------------------

    def subspace(self, names: Sequence[str], name: str | None = None) -> "ConfigurationSpace":
        """Return a space restricted to the given parameter names (in that order)."""
        missing = [n for n in names if n not in self._parameters]
        if missing:
            raise KeyError(f"unknown parameters: {missing}")
        return ConfigurationSpace(
            [self._parameters[n] for n in names],
            name=name or f"{self.name}/subspace",
        )

    def index_of(self, name: str) -> int:
        """Return the position of a parameter within the encoding vector."""
        return self.names.index(name)
