"""The holistic Milvus-like tuning space: the paper 16 dimensions plus serving topology.

The paper tunes Milvus 2.3.1 with 16 dimensions: the index type, eight index
parameters (Table I of the paper) and seven system parameters recommended by
the Milvus configuration documentation.  This module builds the equivalent
space for the simulated VDMS in :mod:`repro.vdms`, extended by the three
serving-topology parameters of the sharded engine, the two
background-maintenance parameters of the compaction subsystem, the two
hybrid-search parameters of the filtered query planner, the two
query-cache parameters of the tiered result/plan cache and the two
durability parameters of the WAL/checkpoint tier (27 dimensions in
total).

Index parameters (Table I)::

    FLAT        -- (none)
    IVF_FLAT    -- nlist ; nprobe
    IVF_SQ8     -- nlist ; nprobe
    IVF_PQ      -- nlist, m, nbits ; nprobe
    HNSW        -- M, efConstruction ; ef
    SCANN       -- nlist ; nprobe, reorder_k
    AUTOINDEX   -- (none)

System parameters (shared by every index type)::

    segment_max_size        -- maximum segment size in MB
    segment_seal_proportion -- growing segments are sealed at this fill ratio
    graceful_time           -- bounded-consistency tolerance in milliseconds
    insert_buf_size         -- per-node insert buffer size in MB
    chunk_rows              -- rows per chunk inside a sealed segment
    query_node_threads      -- intra-query thread parallelism of a query node
    replica_number          -- number of in-memory replicas of the collection

Serving-topology parameters (added by the sharded serving engine of
:mod:`repro.vdms.sharding`; shared by every index type as well)::

    shard_num               -- horizontal partitions of the collection
    routing_policy          -- row-to-shard routing: hash or range
    search_threads          -- query execution pool driving concurrent requests

Maintenance parameters (added by the background-maintenance subsystem of
:mod:`repro.vdms.maintenance`; they govern how delete-churned collections
heal)::

    compaction_trigger_ratio -- tombstone fraction that makes a sealed
                                segment a compaction candidate
    maintenance_mode         -- off / inline / background scheduling of
                                compaction + incremental re-indexing

Hybrid-search parameters (added by the filtered query planner of
:mod:`repro.vdms.request`; they govern how attribute-filtered searches
execute)::

    filter_strategy          -- auto / pre / post filter execution
    overfetch_factor         -- post-filter over-fetch multiplier

Query-cache parameters (added by the tiered query cache of
:mod:`repro.vdms.cache`; they govern whether repeated requests are served
from memoized results and how many entries stay resident)::

    cache_policy             -- none / lru result+plan caching
    cache_capacity           -- entries kept per cache tier

Durability parameters (added by the WAL/checkpoint tier of
:mod:`repro.vdms.durability`; they trade mutation throughput against what
a crash can lose and how long recovery takes)::

    durability_mode          -- off / wal / wal+checkpoint persistence
    wal_sync_policy          -- always / batch fsync of WAL appends
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.config.parameters import CategoricalParameter, FloatParameter, IntParameter, Parameter
from repro.config.space import Configuration, ConfigurationSpace

__all__ = [
    "INDEX_TYPES",
    "INDEX_PARAMETERS",
    "SYSTEM_PARAMETERS",
    "build_milvus_space",
    "parameters_for_index",
    "default_configuration",
]

#: Index types supported by the simulated VDMS, in the order used everywhere.
INDEX_TYPES: tuple[str, ...] = (
    "FLAT",
    "IVF_FLAT",
    "IVF_SQ8",
    "IVF_PQ",
    "HNSW",
    "SCANN",
    "AUTOINDEX",
)

#: Index parameters relevant to each index type (building + searching).
INDEX_PARAMETERS: dict[str, tuple[str, ...]] = {
    "FLAT": (),
    "IVF_FLAT": ("nlist", "nprobe"),
    "IVF_SQ8": ("nlist", "nprobe"),
    "IVF_PQ": ("nlist", "nprobe", "pq_m", "pq_nbits"),
    "HNSW": ("hnsw_m", "ef_construction", "ef_search"),
    "SCANN": ("nlist", "nprobe", "reorder_k"),
    "AUTOINDEX": (),
}

#: The system parameters shared by all index types: the paper seven plus
#: the serving topology (shard count, routing policy, execution threads)
#: plus the maintenance policy (compaction trigger, scheduling mode) plus
#: the hybrid-search planner and the tiered query cache.
SYSTEM_PARAMETERS: tuple[str, ...] = (
    "segment_max_size",
    "segment_seal_proportion",
    "graceful_time",
    "insert_buf_size",
    "chunk_rows",
    "query_node_threads",
    "replica_number",
    "shard_num",
    "routing_policy",
    "search_threads",
    "compaction_trigger_ratio",
    "maintenance_mode",
    "filter_strategy",
    "overfetch_factor",
    "cache_policy",
    "cache_capacity",
    "durability_mode",
    "wal_sync_policy",
)


def _index_parameter_specs() -> list[Parameter]:
    """Specs for the eight index parameters of Table I."""
    return [
        IntParameter("nlist", low=16, high=1024, default=128, log_scale=True),
        IntParameter("nprobe", low=1, high=512, default=16, log_scale=True),
        IntParameter("pq_m", low=2, high=16, default=8),
        IntParameter("pq_nbits", low=4, high=8, default=8),
        IntParameter("hnsw_m", low=4, high=64, default=16),
        IntParameter("ef_construction", low=16, high=512, default=128, log_scale=True),
        IntParameter("ef_search", low=10, high=512, default=64, log_scale=True),
        IntParameter("reorder_k", low=100, high=1000, default=200, log_scale=True),
    ]


def _system_parameter_specs() -> list[Parameter]:
    """Specs for the shared system parameters (incl. the serving topology)."""
    return [
        IntParameter("segment_max_size", low=64, high=2048, default=512, log_scale=True),
        FloatParameter("segment_seal_proportion", low=0.05, high=1.0, default=0.25),
        IntParameter("graceful_time", low=0, high=10_000, default=5_000),
        IntParameter("insert_buf_size", low=64, high=2048, default=512, log_scale=True),
        IntParameter("chunk_rows", low=512, high=65_536, default=8_192, log_scale=True),
        IntParameter("query_node_threads", low=1, high=16, default=4),
        IntParameter("replica_number", low=1, high=4, default=1),
        IntParameter("shard_num", low=1, high=8, default=1),
        CategoricalParameter("routing_policy", choices=["hash", "range"], default="hash"),
        IntParameter("search_threads", low=1, high=16, default=1),
        FloatParameter("compaction_trigger_ratio", low=0.05, high=0.95, default=0.2),
        CategoricalParameter(
            "maintenance_mode", choices=["off", "inline", "background"], default="off"
        ),
        CategoricalParameter(
            "filter_strategy", choices=["auto", "pre", "post"], default="auto"
        ),
        FloatParameter("overfetch_factor", low=1.0, high=8.0, default=2.0, log_scale=True),
        CategoricalParameter("cache_policy", choices=["none", "lru"], default="none"),
        IntParameter("cache_capacity", low=16, high=65_536, default=1_024, log_scale=True),
        CategoricalParameter(
            "durability_mode", choices=["off", "wal", "wal+checkpoint"], default="off"
        ),
        CategoricalParameter(
            "wal_sync_policy", choices=["always", "batch"], default="always"
        ),
    ]


def build_milvus_space(
    index_types: tuple[str, ...] = INDEX_TYPES,
    *,
    name: str = "milvus-27d",
) -> ConfigurationSpace:
    """Build the holistic tuning space (index type + index params + system params).

    Parameters
    ----------
    index_types:
        The index types to expose as choices.  The default exposes every
        index type of Table I; restricting the tuple is how the
        "per-index-type tuning" ablation builds its smaller spaces.
    name:
        Space name, used only for display.

    Examples
    --------
    >>> from repro import build_milvus_space
    >>> space = build_milvus_space()
    >>> space.dimension
    27
    >>> space.default_configuration()["index_type"]
    'AUTOINDEX'
    >>> smaller = build_milvus_space(index_types=("HNSW", "IVF_FLAT"))
    >>> smaller["index_type"].choices
    ['HNSW', 'IVF_FLAT']
    """
    unknown = [t for t in index_types if t not in INDEX_TYPES]
    if unknown:
        raise ValueError(f"unknown index types: {unknown}")
    if len(index_types) == 1:
        # A one-choice categorical is not allowed; model it with a fixed
        # two-choice categorical whose default is the single index type.
        index_parameter: Parameter = CategoricalParameter(
            "index_type", choices=[index_types[0], index_types[0] + "_"], default=index_types[0]
        )
    else:
        index_parameter = CategoricalParameter(
            "index_type", choices=list(index_types), default="AUTOINDEX" if "AUTOINDEX" in index_types else index_types[0]
        )
    parameters: list[Parameter] = [index_parameter]
    parameters.extend(_index_parameter_specs())
    parameters.extend(_system_parameter_specs())
    return ConfigurationSpace(parameters, name=name)


def parameters_for_index(index_type: str) -> tuple[str, ...]:
    """Return the names of the tunable parameters relevant to ``index_type``.

    This always includes the shared system parameters (the paper's seven
    plus the serving topology), since they apply to every index type, plus
    the index-specific parameters of Table I.
    """
    if index_type not in INDEX_PARAMETERS:
        raise KeyError(f"unknown index type {index_type!r}")
    return INDEX_PARAMETERS[index_type] + SYSTEM_PARAMETERS


def default_configuration(
    space: ConfigurationSpace | None = None,
    *,
    index_type: str | None = None,
    overrides: Mapping[str, Any] | None = None,
) -> Configuration:
    """Build the default configuration, optionally pinned to an index type.

    Parameters
    ----------
    space:
        The space to build the configuration in.  ``None`` builds the full
        27-dimensional space first.
    index_type:
        If given, the returned configuration uses this index type instead of
        the space default.
    overrides:
        Additional parameter values overriding the defaults.
    """
    if space is None:
        space = build_milvus_space()
    values = {p.name: p.default for p in space.parameters}
    if index_type is not None:
        if not space["index_type"].validate(index_type):
            raise ValueError(f"index type {index_type!r} not available in this space")
        values["index_type"] = index_type
    if overrides:
        values.update(overrides)
    return space.configuration(values)
