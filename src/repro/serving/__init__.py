"""Network serving front-end and open-loop load harness.

This package turns the in-process :class:`~repro.vdms.server.VectorDBServer`
into a network service with explicit overload behaviour:

* :mod:`repro.serving.admission` — bounded request queue, per-request
  deadlines checked at dequeue, load shedding, graceful drain.
* :mod:`repro.serving.server` — :class:`ServingFrontend`, a threaded-socket
  JSON-over-HTTP server mapping admission outcomes onto status codes
  (200 / 429 shed / 503 draining / 504 deadline).
* :mod:`repro.serving.loadgen` — :class:`LoadGenerator`, an open-loop
  Poisson-arrival load generator, plus a closed-loop
  :func:`measure_saturation` probe to anchor offered-load sweeps.
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionSnapshot,
    DeadlineExceededError,
    QueueFullError,
    ServerDrainingError,
)
from repro.serving.loadgen import LoadGenerator, LoadReport, measure_saturation, run_load
from repro.serving.server import ServingConfig, ServingFrontend

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionSnapshot",
    "DeadlineExceededError",
    "LoadGenerator",
    "LoadReport",
    "QueueFullError",
    "ServerDrainingError",
    "ServingConfig",
    "ServingFrontend",
    "measure_saturation",
    "run_load",
]
