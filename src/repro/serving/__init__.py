"""Network serving front-end and open-loop load harness.

This package turns the in-process :class:`~repro.vdms.server.VectorDBServer`
into a multi-tenant network service with explicit overload behaviour:

* :mod:`repro.serving.admission` — per-tenant bounded request queues drained
  by weighted-fair (stride) scheduling, per-request deadlines checked at
  dequeue, load shedding, tenant eviction, graceful drain.
* :mod:`repro.serving.tenancy` — the tenant model: :class:`TenantSLO`
  (recall floor / p99 target / cost budget, mapping onto the paper's
  constrained acquisition) and :class:`TenantSpec` with the
  ``--tenant-config`` file parser.
* :mod:`repro.serving.server` — :class:`ServingFrontend`, a threaded-socket
  JSON-over-HTTP server mapping admission outcomes onto status codes
  (200 / 429 shed / 503 draining / 504 deadline / 409 evicted), routing
  requests to per-tenant queues by collection name.
* :mod:`repro.serving.loadgen` — :class:`LoadGenerator`, an open-loop
  Poisson-arrival load generator; :class:`MultiTenantLoadGenerator` for
  mixed per-tenant QPS/Zipf/filter traffic profiles; plus a closed-loop
  :func:`measure_saturation` probe to anchor offered-load sweeps.
"""

from repro.serving.admission import (
    DEFAULT_TENANT,
    SCHEDULING_POLICIES,
    AdmissionController,
    AdmissionError,
    AdmissionSnapshot,
    DeadlineExceededError,
    QueueFullError,
    ServerDrainingError,
    TenantEvictedError,
)
from repro.serving.loadgen import (
    LoadGenerator,
    LoadReport,
    MixedLoadReport,
    MultiTenantLoadGenerator,
    TenantLoadProfile,
    measure_saturation,
    run_load,
    run_mixed_load,
)
from repro.serving.server import ServingConfig, ServingFrontend
from repro.serving.tenancy import TenantSLO, TenantSpec, load_tenant_config, parse_tenant_config

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionSnapshot",
    "DEFAULT_TENANT",
    "DeadlineExceededError",
    "LoadGenerator",
    "LoadReport",
    "MixedLoadReport",
    "MultiTenantLoadGenerator",
    "QueueFullError",
    "SCHEDULING_POLICIES",
    "ServerDrainingError",
    "ServingConfig",
    "ServingFrontend",
    "TenantEvictedError",
    "TenantLoadProfile",
    "TenantSLO",
    "TenantSpec",
    "load_tenant_config",
    "measure_saturation",
    "parse_tenant_config",
    "run_load",
    "run_mixed_load",
]
