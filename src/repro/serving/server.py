"""The network serving front-end: JSON over HTTP around a `VectorDBServer`.

Until this module existed, :class:`~repro.vdms.server.VectorDBServer` was an
in-process object: nothing ever *queued*, so the cost model's concurrency
story (``concurrent_qps``) had never been confronted with a real request
path.  :class:`ServingFrontend` closes that gap with a deliberately small
threaded-socket server (stdlib ``http.server``; one connection thread per
client, execution bounded by the admission controller's worker pool):

Request lifecycle (data plane)::

    accept ──► admit / shed ──► deadline check ──► execute ──► respond
                  │ 429 queue full    │ 504 expired
                  │ 503 draining      ▼
                  ▼                (worker pool, bounded concurrency)

* **accept** — the HTTP layer parses the request and resolves the route.
* **admit/shed** — the body is handed to the
  :class:`~repro.serving.admission.AdmissionController`: full queue → 429,
  draining → 503, otherwise the request waits in the bounded queue.
* **deadline check** — a worker dequeues the request; if its deadline
  (``deadline_ms`` in the JSON body, falling back to the server's
  ``default_deadline_ms``) passed while it waited, it is answered 504
  without touching the backend.
* **execute** — the worker runs the operation against the wrapped
  :class:`~repro.vdms.server.VectorDBServer`.
* **drain** — on SIGTERM (or :meth:`ServingFrontend.drain`): stop accepting
  (new requests get 503), finish every admitted request, stop the backend's
  maintenance workers and the shared query scheduler, stop the listener.

Endpoints (all bodies and responses are JSON):

========  =====================================  =====================================
method    path                                   action
========  =====================================  =====================================
GET       ``/healthz``                           liveness + draining flag
GET       ``/stats``                             admission counters + queue depth
                                                 + per-tenant ledgers
GET       ``/collections``                       list collection names
GET       ``/collections/{name}``                dimension/metric/rows/index info
GET       ``/collections/{name}/stats``          per-tenant admission ledger +
                                                 collection + cache counters + SLO
POST      ``/collections``                       create (``name``, ``dimension``, …)
DELETE    ``/collections/{name}``                drop (stops its maintenance worker;
                                                 queued tenant requests get 409)
POST      ``/collections/{name}/insert``         ``vectors`` (+ optional ``ids``)
POST      ``/collections/{name}/flush``          seal full segments
POST      ``/collections/{name}/index``          ``index_type`` + ``params``
POST      ``/collections/{name}/maintenance``    one compaction/re-index pass
POST      ``/collections/{name}/checkpoint``     persist segments + truncate WAL
                                                 (durable collections only)
POST      ``/collections/{name}/search``         ``queries``, ``top_k``
                                                 (+ ``use_cache``, ``deadline_ms``,
                                                 ``filter`` {field, op, value})
========  =====================================  =====================================

A durable front-end (``ServingConfig.data_dir``, or a backend constructed
with its own ``data_dir``) recovers every collection found under the data
directory on :meth:`ServingFrontend.start` — so a ``kill -9`` followed by a
restart serves exactly the acknowledged state — and exposes checkpointing
as a data-plane action.

Every mutating or searching operation goes through admission; the read-only
GET endpoints are served inline so health checks and queue-depth sampling
keep working while the data plane is saturated — exactly what the open-loop
load generator (:mod:`repro.serving.loadgen`) relies on.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

import numpy as np

from repro.serving.admission import (
    SCHEDULING_POLICIES,
    AdmissionController,
    DeadlineExceededError,
    QueueFullError,
    ServerDrainingError,
    TenantEvictedError,
)
from repro.serving.tenancy import TenantSpec
from repro.vdms.errors import CollectionNotFoundError, VDMSError
from repro.vdms.request import AttributeFilter, SearchRequest
from repro.vdms.server import VectorDBServer
from repro.vdms.system_config import SystemConfig

__all__ = ["ServingConfig", "ServingFrontend"]


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of the serving front-end.

    Attributes
    ----------
    host, port:
        Listen address.  Port ``0`` binds an ephemeral port (tests and the
        saturation benchmark use this); the bound port is available as
        :attr:`ServingFrontend.port` once started.
    queue_depth:
        Bound of the admission queue.  This is the knob that trades tail
        latency against shed rate: a deep queue sheds late but lets served
        requests wait ``queue_depth × service_time``, a shallow one keeps
        the tail tight and sheds early.
    workers:
        Execution threads draining the queue (bounded backend concurrency).
    default_deadline_ms:
        Deadline budget applied to requests that do not carry their own
        ``deadline_ms``; ``None`` means no default deadline.
    drain_timeout_seconds:
        How long :meth:`ServingFrontend.drain` waits for admitted requests.
    data_dir:
        Root directory of per-collection durable state, or ``None`` for a
        purely in-memory front-end.  When set (and no backend is injected),
        the frontend builds a durable ``VectorDBServer`` over it and
        :meth:`ServingFrontend.start` recovers every collection found
        there before accepting traffic.
    scheduling:
        Worker-pool scheduling policy over the per-tenant queues:
        ``"fair"`` (weighted stride scheduling — the default; identical to
        FIFO while only one tenant is active) or ``"fifo"`` (one global
        arrival order and one global queue bound, no isolation).
    tenants:
        Declared :class:`~repro.serving.tenancy.TenantSpec` entries, e.g.
        from ``serve --tenant-config``.  Each registers its weight and
        queue bound with the admission controller and, when the spec
        carries a ``system_config``, a per-tenant configuration override on
        the backend.  Tenants not declared here are admitted with weight 1
        and the default queue bound on first use.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_depth: int = 64
    workers: int = 2
    default_deadline_ms: float | None = None
    drain_timeout_seconds: float = 30.0
    data_dir: str | None = None
    scheduling: str = "fair"
    tenants: tuple[TenantSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.scheduling not in SCHEDULING_POLICIES:
            raise ValueError(
                f"scheduling must be one of {SCHEDULING_POLICIES}, "
                f"not {self.scheduling!r}"
            )
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        for spec in self.tenants:
            if not isinstance(spec, TenantSpec):
                raise ValueError("tenants must be TenantSpec instances")
        if not 0 <= int(self.port) <= 65_535:
            raise ValueError("port must lie in [0, 65535]")
        if int(self.queue_depth) < 1:
            raise ValueError("queue_depth must be >= 1")
        if int(self.workers) < 1:
            raise ValueError("workers must be >= 1")
        if self.default_deadline_ms is not None and not self.default_deadline_ms > 0:
            raise ValueError("default_deadline_ms must be positive (or None)")
        if not self.drain_timeout_seconds > 0:
            raise ValueError("drain_timeout_seconds must be positive")
        if self.data_dir is not None and not str(self.data_dir):
            raise ValueError("data_dir must be a non-empty path (or None)")


class _HTTPError(Exception):
    """Internal: carry an HTTP status + message through the handler."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServingFrontend:
    """Threaded-socket JSON/HTTP server with admission control.

    Examples
    --------
    >>> frontend = ServingFrontend()
    >>> frontend.start()
    >>> frontend.url  # doctest: +SKIP
    'http://127.0.0.1:40123'
    >>> frontend.drain()
    True
    """

    def __init__(
        self,
        backend: VectorDBServer | None = None,
        config: ServingConfig | None = None,
    ) -> None:
        self.config = config or ServingConfig()
        if backend is None:
            if self.config.data_dir is not None:
                backend = VectorDBServer(
                    SystemConfig(durability_mode="wal+checkpoint"),
                    data_dir=self.config.data_dir,
                )
            else:
                backend = VectorDBServer()
        elif self.config.data_dir is not None and backend.data_dir is None:
            raise ValueError(
                "ServingConfig.data_dir is set but the injected backend is "
                "in-memory; construct the VectorDBServer with the data_dir"
            )
        self.backend = backend
        #: Collection names recovered from the data directory on the last
        #: :meth:`start` (empty for in-memory front-ends).
        self.recovered_collections: list[str] = []
        self.admission = AdmissionController(
            queue_depth=self.config.queue_depth,
            workers=self.config.workers,
            policy=self.config.scheduling,
        )
        #: Declared tenant specs by name (implicit tenants are not listed).
        self.tenants: dict[str, TenantSpec] = {}
        for spec in self.config.tenants:
            self.tenants[spec.name] = spec
            self.admission.register_tenant(
                spec.name, weight=spec.weight, queue_depth=spec.queue_depth
            )
            if spec.system_config is not None:
                self.backend.apply_system_config(spec.system_config, tenant=spec.name)
        self._httpd: _Server | None = None
        self._thread: threading.Thread | None = None
        self._drain_lock = threading.Lock()
        self._drained: bool | None = None
        self.started = threading.Event()
        #: Set by :meth:`request_drain` (e.g. from a signal handler); the
        #: CLI's serve loop waits on it and then drains from the main thread.
        self.drain_requested = threading.Event()

    # -- addresses ----------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("frontend is not started")
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.config.host}:{self.port}"

    @property
    def draining(self) -> bool:
        """Whether a drain has been initiated."""
        return self.admission.draining

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "ServingFrontend":
        """Bind the socket and serve on a background thread (returns self).

        On a durable backend, every collection found under the data
        directory is recovered *before* the socket binds, so the first
        admitted request already sees the acknowledged pre-crash state.
        """
        if self._httpd is not None:
            raise RuntimeError("frontend is already started")
        if self.backend.data_dir is not None:
            self.recovered_collections = self.backend.recover_all()
        self._httpd = _Server((self.config.host, int(self.config.port)), _Handler)
        self._httpd.frontend = self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serving-accept",
            daemon=True,
        )
        self._thread.start()
        self.started.set()
        return self

    def request_drain(self) -> None:
        """Ask for a drain without performing it (signal-handler safe)."""
        self.drain_requested.set()

    def drain(self) -> bool:
        """Graceful shutdown: 503 new work, finish admitted work, stop.

        The sequence is: flip the admission controller into draining (every
        new data-plane request is answered 503 from this instant), wait for
        the admitted backlog and in-flight requests to complete, shut the
        backend down deterministically (maintenance workers, shared query
        scheduler), then stop the accept loop and close the socket.  The
        listener stays up *during* the wait so in-flight clients receive
        their responses.  Returns ``True`` when every admitted request
        completed within the configured drain timeout.  Idempotent.
        """
        with self._drain_lock:
            if self._drained is None:
                drained = self.admission.drain(timeout=self.config.drain_timeout_seconds)
                self.backend.shutdown()
                if self._httpd is not None:
                    self._httpd.shutdown()
                    self._httpd.server_close()
                if self._thread is not None:
                    self._thread.join(timeout=5.0)
                self._drained = drained
            return self._drained

    close = drain

    def __enter__(self) -> "ServingFrontend":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.drain()

    # -- request execution ---------------------------------------------------------

    def resolve_deadline(self, deadline_ms: float | None) -> float | None:
        """Absolute monotonic deadline for a request arriving now."""
        budget = deadline_ms if deadline_ms is not None else self.config.default_deadline_ms
        if budget is None:
            return None
        return time.monotonic() + float(budget) / 1000.0

    def execute(
        self,
        fn: Callable[[], Any],
        *,
        deadline_ms: float | None = None,
        tenant: str | None = None,
    ) -> Any:
        """Run one data-plane operation through admission control.

        ``tenant`` names the per-tenant queue and admission ledger the
        request is accounted to — the handler passes the collection name,
        so fairness and stats are per collection.  Translates admission
        rejections into :class:`_HTTPError` so the handler maps them onto
        status codes; backend errors propagate.
        """
        try:
            future = self.admission.submit(
                fn, deadline=self.resolve_deadline(deadline_ms), tenant=tenant
            )
        except QueueFullError as error:
            raise _HTTPError(429, str(error)) from None
        except ServerDrainingError as error:
            raise _HTTPError(503, str(error)) from None
        try:
            return future.result()
        except DeadlineExceededError as error:
            raise _HTTPError(504, str(error)) from None
        except TenantEvictedError as error:
            raise _HTTPError(409, str(error)) from None

    def drop_collection(self, name: str) -> int:
        """Drop a collection, first evicting its queued requests.

        Runs through admission like every mutation.  When the drop reaches
        a worker it atomically fails everything still queued for that
        tenant (those clients get 409) *before* removing the collection, so
        no worker ever dequeues a request against a missing collection.
        Requests admitted after the eviction instant fail with a clean 404.
        Returns the number of evicted requests.
        """

        def _drop() -> int:
            evicted = self.admission.fail_tenant(
                name,
                reason=f"collection {name!r} was dropped while the request was queued",
            )
            self.backend.drop_collection(name)
            return evicted

        return int(self.execute(_drop, tenant=name))

    # -- endpoint payloads ---------------------------------------------------------

    def stats_payload(self) -> dict[str, Any]:
        """The ``/stats`` response body."""
        payload = self.admission.stats().to_dict()
        payload["collections"] = self.backend.list_collections()
        payload["queue_capacity"] = self.config.queue_depth
        payload["workers"] = self.config.workers
        payload["scheduling"] = self.config.scheduling
        payload["tenants"] = self.admission.all_tenant_payloads()
        return payload

    def collection_stats_payload(self, name: str) -> dict[str, Any]:
        """The ``/collections/{name}/stats`` response body.

        One tenant's full serving picture: its admission ledger and
        scheduling parameters, its collection counters, its cache tier, and
        its declared SLO (if any).  404s when the collection does not
        exist, even if an admission ledger lingers from before a drop.
        """
        collection = self.backend.get_collection(name)
        payload: dict[str, Any] = {
            "name": name,
            "collection": self.collection_payload(name),
            "admission": self.admission.tenant_payload(name),
        }
        cache = collection.query_cache
        if cache is not None:
            payload["cache"] = {
                "result_hits": cache.stats.result_hits,
                "result_misses": cache.stats.result_misses,
                "plan_hits": cache.stats.plan_hits,
                "plan_misses": cache.stats.plan_misses,
                "result_hit_ratio": cache.stats.result_hit_ratio,
            }
        else:
            payload["cache"] = None
        spec = self.tenants.get(name)
        payload["slo"] = spec.slo.to_dict() if spec is not None else None
        payload["system_config_override"] = name in self.backend.tenant_config_overrides()
        return payload

    def collection_payload(self, name: str) -> dict[str, Any]:
        """The ``/collections/{name}`` response body."""
        collection = self.backend.get_collection(name)
        return {
            "name": collection.name,
            "dimension": collection.dimension,
            "metric": collection.metric,
            "num_rows": collection.num_rows,
            "num_growing_rows": collection.num_growing_rows,
            "sealed_segments": collection.num_sealed_segments,
            "index_type": collection.index_type,
            "version": collection.version,
        }


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    frontend: ServingFrontend


class _Handler(BaseHTTPRequestHandler):
    """Route table + JSON plumbing; all real policy lives in the frontend."""

    protocol_version = "HTTP/1.1"
    server: _Server

    # -- plumbing -----------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # per-request lines on stderr would drown the load harness

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise _HTTPError(400, f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        frontend = self.server.frontend
        try:
            status, payload = self._route(frontend, method, self.path.rstrip("/") or "/")
        except _HTTPError as error:
            status, payload = error.status, {"error": str(error)}
        except CollectionNotFoundError as error:
            status, payload = 404, {"error": str(error)}
        except (VDMSError, ValueError, KeyError, TypeError) as error:
            status, payload = 400, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 - last-resort 500
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        try:
            self._send_json(status, payload)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- routes -------------------------------------------------------------------

    def _route(
        self, frontend: ServingFrontend, method: str, path: str
    ) -> tuple[int, dict[str, Any]]:
        backend = frontend.backend
        if method == "GET":
            if path == "/healthz":
                return 200, {
                    "status": "draining" if frontend.draining else "ok",
                    "draining": frontend.draining,
                }
            if path == "/stats":
                return 200, frontend.stats_payload()
            if path == "/collections":
                return 200, {"collections": backend.list_collections()}
            name = _match_collection(path)
            if name is not None:
                return 200, frontend.collection_payload(name)
            name, action = _match_action(path)
            if name is not None and action == "stats":
                return 200, frontend.collection_stats_payload(name)
            raise _HTTPError(404, f"no such route: GET {path}")

        if method == "DELETE":
            name = _match_collection(path)
            if name is not None:
                evicted = frontend.drop_collection(name)
                return 200, {"dropped": name, "evicted_requests": evicted}
            raise _HTTPError(404, f"no such route: DELETE {path}")

        if method != "POST":
            raise _HTTPError(404, f"no such route: {method} {path}")

        body = self._read_json()
        if path == "/collections":
            return self._create_collection(frontend, body)
        name, action = _match_action(path)
        if name is None:
            raise _HTTPError(404, f"no such route: POST {path}")
        if action == "insert":
            return self._insert(frontend, name, body)
        if action == "flush":
            sealed = frontend.execute(lambda: frontend.backend.flush(name), tenant=name)
            return 200, {"sealed_segments": int(sealed)}
        if action == "index":
            return self._index(frontend, name, body)
        if action == "maintenance":
            report = frontend.execute(
                lambda: frontend.backend.get_collection(name).run_maintenance(),
                tenant=name,
            )
            return 200, {
                "segments_compacted": report.segments_compacted,
                "segments_created": report.segments_created,
                "segments_reindexed": report.segments_reindexed,
                "rows_dropped": report.rows_dropped,
                "rows_rewritten": report.rows_rewritten,
            }
        if action == "checkpoint":
            report = frontend.execute(
                lambda: frontend.backend.get_collection(name).checkpoint(),
                tenant=name,
            )
            return 200, {
                "generation": report.generation,
                "segments_persisted": report.segments_persisted,
                "segments_reused": report.segments_reused,
                "files_written": report.files_written,
                "wal_records_truncated": report.wal_records_truncated,
            }
        if action == "search":
            return self._search(frontend, name, body)
        raise _HTTPError(404, f"no such route: POST {path}")

    # -- per-endpoint bodies -------------------------------------------------------

    def _create_collection(
        self, frontend: ServingFrontend, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise _HTTPError(400, "create requires a non-empty string 'name'")
        if "dimension" not in body:
            raise _HTTPError(400, "create requires an integer 'dimension'")
        dimension = int(body["dimension"])
        metric = str(body.get("metric", "angular"))
        auto_maintenance = bool(body.get("auto_maintenance", True))
        frontend.execute(
            lambda: frontend.backend.create_collection(
                name, dimension, metric=metric, auto_maintenance=auto_maintenance
            ),
            tenant=name,
        )
        return 200, {"name": name, "dimension": dimension, "metric": metric}

    def _insert(
        self, frontend: ServingFrontend, name: str, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        if "vectors" not in body:
            raise _HTTPError(400, "insert requires 'vectors' (list of rows)")
        vectors = np.asarray(body["vectors"], dtype=np.float32)
        ids = None
        if body.get("ids") is not None:
            ids = np.asarray(body["ids"], dtype=np.int64)
        inserted = frontend.execute(
            lambda: frontend.backend.insert(name, vectors, ids), tenant=name
        )
        return 200, {"inserted": int(inserted)}

    def _index(
        self, frontend: ServingFrontend, name: str, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        index_type = body.get("index_type")
        if not isinstance(index_type, str) or not index_type:
            raise _HTTPError(400, "index requires a string 'index_type'")
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise _HTTPError(400, "'params' must be a JSON object")
        stats = frontend.execute(
            lambda: frontend.backend.create_index(name, index_type, params),
            tenant=name,
        )
        return 200, {"index_type": index_type, "segments_indexed": len(stats)}

    def _search(
        self, frontend: ServingFrontend, name: str, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        if "queries" not in body:
            raise _HTTPError(400, "search requires 'queries' (a row or list of rows)")
        queries = np.asarray(body["queries"], dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2 or queries.shape[0] == 0:
            raise _HTTPError(400, "'queries' must be a non-empty 2-D array of rows")
        top_k = int(body.get("top_k", 10))
        if top_k < 1:
            raise _HTTPError(400, "'top_k' must be >= 1")
        use_cache = bool(body.get("use_cache", True))
        deadline_ms = body.get("deadline_ms")
        if deadline_ms is not None and not float(deadline_ms) > 0:
            raise _HTTPError(400, "'deadline_ms' must be positive")
        filter_body = body.get("filter")
        if filter_body is not None:
            if not isinstance(filter_body, dict) or not {"field", "op", "value"} <= set(
                filter_body
            ):
                raise _HTTPError(400, "'filter' must be an object with field/op/value")
            try:
                attribute_filter = AttributeFilter(
                    field=str(filter_body["field"]),
                    op=str(filter_body["op"]),
                    value=filter_body["value"],
                )
            except (ValueError, TypeError) as error:
                raise _HTTPError(400, f"invalid 'filter': {error}") from None
            request = SearchRequest(queries, top_k, filter=attribute_filter)
            call = lambda: frontend.backend.search(name, request, use_cache=use_cache)  # noqa: E731
        else:
            call = lambda: frontend.backend.search(  # noqa: E731
                name, queries, top_k, use_cache=use_cache
            )
        result = frontend.execute(
            call,
            deadline_ms=None if deadline_ms is None else float(deadline_ms),
            tenant=name,
        )
        return 200, {
            "ids": result.ids.tolist(),
            "distances": result.distances.tolist(),
            "num_queries": int(result.stats.num_queries),
            "cache_hits": int(result.stats.cache_hits),
        }


def _match_collection(path: str) -> str | None:
    """``/collections/{name}`` → name (no slashes allowed in names)."""
    parts = path.split("/")
    if len(parts) == 3 and parts[1] == "collections" and parts[2]:
        return parts[2]
    return None


def _match_action(path: str) -> tuple[str | None, str | None]:
    """``/collections/{name}/{action}`` → (name, action)."""
    parts = path.split("/")
    if len(parts) == 4 and parts[1] == "collections" and parts[2] and parts[3]:
        return parts[2], parts[3]
    return None, None
