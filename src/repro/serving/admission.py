"""Admission control: per-tenant bounded queues, deadlines and fair scheduling.

The serving front-end must degrade *predictably* under overload.  An
unbounded queue degrades unpredictably: every queued request eventually
completes, but tail latency grows without bound and the clients that gave up
long ago still consume server work.  The :class:`AdmissionController`
implements the standard counter-measures in one place, decoupled from the
HTTP layer so they are unit-testable with plain callables:

* **Bounded queues** — each tenant owns a bounded queue; a submission
  against a full queue is *shed* immediately (:class:`QueueFullError`,
  surfaced as HTTP 429).  Shedding costs microseconds, so the server stays
  responsive precisely when it is overloaded.  Under the ``"fifo"`` policy
  the bound is global (the pre-multi-tenant behavior); under ``"fair"`` each
  tenant is bounded independently, so one tenant's backlog cannot consume
  another tenant's queue slots.
* **Weighted-fair scheduling** — workers drain the tenant queues by stride
  scheduling: each tenant carries a *pass* value advanced by
  ``1 / weight`` per dequeue, and workers always pick the backlogged tenant
  with the smallest pass.  A tenant with weight 2 receives twice the service
  of a tenant with weight 1 while both are backlogged; an idle tenant's pass
  is re-synchronized on re-arrival so sleeping never accumulates credit.
  With a single tenant the dequeue order is exactly FIFO.
* **Per-request deadlines** — a request may carry an absolute deadline
  (``time.monotonic()`` domain).  Workers check it when they *dequeue* the
  request: if the deadline passed while the request waited, executing it
  would waste service capacity on an answer the client no longer wants, so
  it is rejected (:class:`DeadlineExceededError`, surfaced as HTTP 504)
  without touching the backend.
* **Eviction** — :meth:`AdmissionController.fail_tenant` atomically fails
  every *queued* request of one tenant (:class:`TenantEvictedError`,
  surfaced as HTTP 409).  This is the drop-collection path: workers must
  never dequeue a request against a collection that no longer exists.
* **Graceful drain** — :meth:`AdmissionController.drain` flips the
  controller into a draining state (new submissions raise
  :class:`ServerDrainingError`, surfaced as HTTP 503), waits until every
  *admitted* request has been completed, then stops the worker threads.
  Admitted work is a promise: drain never abandons it.

Execution happens on a fixed pool of ``workers`` threads, so the controller
also bounds concurrency — the queues absorb bursts, the workers bound the
parallel load on the backend.  Every tenant keeps a full admission ledger
(:class:`AdmissionSnapshot`), and the controller-wide ledger is the exact
sum of the per-tenant ledgers.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionSnapshot",
    "DEFAULT_TENANT",
    "DeadlineExceededError",
    "QueueFullError",
    "SCHEDULING_POLICIES",
    "ServerDrainingError",
    "TenantEvictedError",
]

#: Tenant requests are attributed to when the caller does not name one.
DEFAULT_TENANT = "__default__"

#: Recognized worker-pool scheduling policies.
SCHEDULING_POLICIES = ("fair", "fifo")


class AdmissionError(RuntimeError):
    """Base class for admission-control rejections."""


class QueueFullError(AdmissionError):
    """The bounded request queue is full; the request was shed (HTTP 429)."""


class DeadlineExceededError(AdmissionError):
    """The request's deadline passed while it was queued (HTTP 504)."""


class ServerDrainingError(AdmissionError):
    """The controller is draining or closed; no new work is admitted (HTTP 503)."""


class TenantEvictedError(AdmissionError):
    """The request's tenant was evicted while the request was queued (HTTP 409)."""


@dataclass(frozen=True)
class AdmissionSnapshot:
    """A consistent snapshot of an admission ledger.

    The controller-wide snapshot (:meth:`AdmissionController.stats`) and the
    per-tenant snapshots (:meth:`AdmissionController.tenant_stats`) share
    this shape; the controller-wide counters are the sums of the per-tenant
    ones.

    Attributes
    ----------
    admitted:
        Requests accepted into the queue since start.
    shed:
        Submissions rejected because the queue was full (429s).
    rejected:
        Submissions rejected because the controller was draining (503s).
    expired:
        Admitted requests rejected at dequeue because their deadline had
        already passed (504s).
    served:
        Admitted requests whose callable completed normally.
    failed:
        Admitted requests whose callable raised.
    queue_depth:
        Requests currently waiting for a worker.
    in_flight:
        Admitted requests not yet finished (queued + executing).
    max_queue_depth:
        High-water mark of ``queue_depth`` since start.
    draining:
        Whether :meth:`AdmissionController.drain` has been initiated.
    evicted:
        Admitted requests failed by :meth:`AdmissionController.fail_tenant`
        while still queued (409s).
    """

    admitted: int
    shed: int
    rejected: int
    expired: int
    served: int
    failed: int
    queue_depth: int
    in_flight: int
    max_queue_depth: int
    draining: bool
    evicted: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the ``/stats`` endpoint."""
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "rejected": self.rejected,
            "expired": self.expired,
            "served": self.served,
            "failed": self.failed,
            "evicted": self.evicted,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "max_queue_depth": self.max_queue_depth,
            "draining": self.draining,
        }


class _TenantState:
    """One tenant's queue, stride-scheduling state and admission ledger."""

    __slots__ = (
        "name",
        "weight",
        "queue_depth",
        "jobs",
        "pass_value",
        "admitted",
        "shed",
        "rejected",
        "expired",
        "served",
        "failed",
        "evicted",
        "in_flight",
        "max_queue_depth",
    )

    def __init__(self, name: str, weight: float, queue_depth: int) -> None:
        self.name = name
        self.weight = weight
        self.queue_depth = queue_depth
        self.jobs: deque = deque()
        self.pass_value = 0.0
        self.admitted = 0
        self.shed = 0
        self.rejected = 0
        self.expired = 0
        self.served = 0
        self.failed = 0
        self.evicted = 0
        self.in_flight = 0
        self.max_queue_depth = 0


class AdmissionController:
    """Per-tenant bounded queues drained by a weighted-fair worker pool.

    ``policy`` selects how the shared workers pick the next request:
    ``"fair"`` (the default) is stride scheduling over the per-tenant
    queues — with a single tenant it degenerates to exact FIFO — while
    ``"fifo"`` replays the pre-multi-tenant behavior: one global arrival
    order, one global queue bound, no isolation.

    Examples
    --------
    >>> controller = AdmissionController(queue_depth=8, workers=2)
    >>> future = controller.submit(lambda: 21 * 2)
    >>> future.result()
    42
    >>> controller.drain()
    True
    """

    def __init__(
        self,
        *,
        queue_depth: int = 64,
        workers: int = 2,
        policy: str = "fair",
        thread_name_prefix: str = "repro-serve",
    ) -> None:
        if int(queue_depth) < 1:
            raise ValueError("queue_depth must be >= 1")
        if int(workers) < 1:
            raise ValueError("workers must be >= 1")
        if policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; expected one of {SCHEDULING_POLICIES}"
            )
        self.queue_depth = int(queue_depth)
        self.workers = int(workers)
        self.policy = policy
        self._tenants: dict[str, _TenantState] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._work = threading.Condition(self._lock)
        self._arrival_seq = 0
        self._global_pass = 0.0
        self._total_queued = 0
        self._in_flight = 0
        self._max_queue_depth = 0
        self._draining = False
        self._closed = False
        self._stopped = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{thread_name_prefix}-{slot}",
                daemon=True,
            )
            for slot in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- tenants ------------------------------------------------------------------

    def register_tenant(
        self,
        name: str,
        *,
        weight: float = 1.0,
        queue_depth: int | None = None,
    ) -> None:
        """Create or update a tenant's scheduling weight and queue bound.

        Unknown tenants are registered implicitly (weight 1, controller
        queue depth) on first submission, so registration is only needed to
        set non-default limits.  Updating an existing tenant keeps its
        ledger and any queued work.
        """
        weight = float(weight)
        if not weight > 0.0:
            raise ValueError("tenant weight must be positive")
        depth = self.queue_depth if queue_depth is None else int(queue_depth)
        if depth < 1:
            raise ValueError("tenant queue_depth must be >= 1")
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                self._tenants[name] = _TenantState(name, weight, depth)
            else:
                state.weight = weight
                state.queue_depth = depth

    def tenant_names(self) -> list[str]:
        """Names of every tenant with an admission ledger (sorted)."""
        with self._lock:
            return sorted(self._tenants)

    def _tenant_locked(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(name, 1.0, self.queue_depth)
            self._tenants[name] = state
        return state

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        deadline: float | None = None,
        tenant: str | None = None,
        **kwargs: Any,
    ) -> concurrent.futures.Future:
        """Admit ``fn(*args, **kwargs)`` for execution, or reject it now.

        ``deadline`` is an absolute ``time.monotonic()`` instant; ``None``
        means the request waits however long it takes.  ``tenant`` names the
        admission ledger and fair-scheduling queue the request is accounted
        to (default: the shared :data:`DEFAULT_TENANT`).  Raises
        :class:`ServerDrainingError` when draining, :class:`QueueFullError`
        when the bounded queue is full.  The returned future resolves to the
        callable's result, its exception, :class:`DeadlineExceededError` if
        the deadline passed before a worker picked the request up, or
        :class:`TenantEvictedError` if the tenant was evicted first.
        """
        future: concurrent.futures.Future = concurrent.futures.Future()
        with self._lock:
            state = self._tenant_locked(tenant if tenant is not None else DEFAULT_TENANT)
            if self._draining:
                state.rejected += 1
                raise ServerDrainingError("server is draining; not accepting new requests")
            if self.policy == "fifo":
                full = self._total_queued >= self.queue_depth
                capacity = self.queue_depth
            else:
                full = len(state.jobs) >= state.queue_depth
                capacity = state.queue_depth
            if full:
                state.shed += 1
                raise QueueFullError(
                    f"request queue is full ({capacity} waiting); request shed"
                )
            if not state.jobs:
                # A tenant returning from idle must not spend credit it
                # accumulated while asleep: re-sync its pass to the global
                # virtual time so fairness is measured from *now*.
                state.pass_value = max(state.pass_value, self._global_pass)
            self._arrival_seq += 1
            state.jobs.append((self._arrival_seq, fn, args, kwargs, deadline, future))
            state.admitted += 1
            state.in_flight += 1
            self._in_flight += 1
            self._total_queued += 1
            if len(state.jobs) > state.max_queue_depth:
                state.max_queue_depth = len(state.jobs)
            if self._total_queued > self._max_queue_depth:
                self._max_queue_depth = self._total_queued
            self._work.notify()
        return future

    # -- introspection ------------------------------------------------------------

    @property
    def current_queue_depth(self) -> int:
        """Requests currently waiting for a worker (approximate under races)."""
        return self._total_queued

    @property
    def draining(self) -> bool:
        """Whether drain has been initiated."""
        return self._draining

    def _snapshot_locked(self, state: _TenantState) -> AdmissionSnapshot:
        return AdmissionSnapshot(
            admitted=state.admitted,
            shed=state.shed,
            rejected=state.rejected,
            expired=state.expired,
            served=state.served,
            failed=state.failed,
            evicted=state.evicted,
            queue_depth=len(state.jobs),
            in_flight=state.in_flight,
            max_queue_depth=state.max_queue_depth,
            draining=self._draining,
        )

    def stats(self) -> AdmissionSnapshot:
        """A consistent controller-wide snapshot (sum of the tenant ledgers)."""
        with self._lock:
            tenants = list(self._tenants.values())
            return AdmissionSnapshot(
                admitted=sum(s.admitted for s in tenants),
                shed=sum(s.shed for s in tenants),
                rejected=sum(s.rejected for s in tenants),
                expired=sum(s.expired for s in tenants),
                served=sum(s.served for s in tenants),
                failed=sum(s.failed for s in tenants),
                evicted=sum(s.evicted for s in tenants),
                queue_depth=self._total_queued,
                in_flight=self._in_flight,
                max_queue_depth=self._max_queue_depth,
                draining=self._draining,
            )

    def tenant_stats(self, name: str) -> AdmissionSnapshot:
        """One tenant's admission ledger (a zero ledger for unknown tenants)."""
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = _TenantState(name, 1.0, self.queue_depth)
            return self._snapshot_locked(state)

    def tenant_payload(self, name: str) -> dict[str, Any]:
        """One tenant's ledger plus its scheduling parameters, as a dict."""
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = _TenantState(name, 1.0, self.queue_depth)
            payload = self._snapshot_locked(state).to_dict()
            payload["weight"] = state.weight
            payload["queue_capacity"] = state.queue_depth
            return payload

    def all_tenant_payloads(self) -> dict[str, dict[str, Any]]:
        """Every tenant's :meth:`tenant_payload`, keyed by tenant name."""
        with self._lock:
            result = {}
            for name, state in sorted(self._tenants.items()):
                payload = self._snapshot_locked(state).to_dict()
                payload["weight"] = state.weight
                payload["queue_capacity"] = state.queue_depth
                result[name] = payload
            return result

    # -- eviction -----------------------------------------------------------------

    def fail_tenant(self, name: str, reason: str | None = None) -> int:
        """Fail every *queued* request of one tenant, atomically.

        Requests already executing on a worker are allowed to finish (they
        hold a live reference to whatever backend object they need);
        everything still waiting resolves to :class:`TenantEvictedError`.
        Returns the number of evicted requests.  The tenant's ledger stays
        queryable afterwards — eviction is an outcome, not an erasure.
        """
        message = reason or f"tenant {name!r} was evicted while the request was queued"
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                return 0
            evicted = list(state.jobs)
            state.jobs.clear()
            count = len(evicted)
            state.evicted += count
            state.in_flight -= count
            self._in_flight -= count
            self._total_queued -= count
            if self._in_flight == 0:
                self._idle.notify_all()
        for _seq, _fn, _args, _kwargs, _deadline, future in evicted:
            future.set_exception(TenantEvictedError(message))
        return count

    # -- lifecycle ----------------------------------------------------------------

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Stop admitting, finish every admitted request, stop the workers.

        Returns ``True`` when every admitted request completed within
        ``timeout`` seconds (``None`` waits forever).  Even on timeout the
        workers are stopped — after finishing the remaining queued work —
        so the method always leaves the controller closed; it never abandons
        a request silently (``False`` tells the caller in-flight work
        remained).  Idempotent: later calls return immediately.
        """
        with self._lock:
            already_closed = self._closed
            self._draining = True
            if not already_closed:
                deadline = None if timeout is None else time.monotonic() + timeout
                while self._in_flight > 0:
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        break
                    self._idle.wait(timeout=remaining)
                drained = self._in_flight == 0
                self._closed = True
                self._stopped = True
                self._work.notify_all()
            else:
                drained = self._in_flight == 0
        if already_closed:
            return drained
        for thread in self._threads:
            thread.join(timeout=5.0)
        return drained

    def close(self) -> None:
        """Alias for :meth:`drain` with the default timeout."""
        self.drain()

    # -- workers ------------------------------------------------------------------

    def _pop_next_locked(self) -> tuple | None:
        """Pick the next job per the scheduling policy (caller holds the lock)."""
        best: _TenantState | None = None
        if self.policy == "fifo":
            best_seq = None
            for state in self._tenants.values():
                if not state.jobs:
                    continue
                seq = state.jobs[0][0]
                if best_seq is None or seq < best_seq:
                    best_seq = seq
                    best = state
        else:
            best_key = None
            for state in self._tenants.values():
                if not state.jobs:
                    continue
                key = (state.pass_value, state.name)
                if best_key is None or key < best_key:
                    best_key = key
                    best = state
            if best is not None:
                self._global_pass = best.pass_value
                best.pass_value += 1.0 / best.weight
        if best is None:
            return None
        job = best.jobs.popleft()
        self._total_queued -= 1
        return (*job[1:], best)

    def _finish(self, outcome: str, state: _TenantState) -> None:
        with self._lock:
            if outcome == "served":
                state.served += 1
            elif outcome == "failed":
                state.failed += 1
            else:
                state.expired += 1
            state.in_flight -= 1
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.notify_all()

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while True:
                    job = self._pop_next_locked()
                    if job is not None:
                        break
                    if self._stopped:
                        return
                    self._work.wait(timeout=1.0)
            fn, args, kwargs, deadline, future, state = job
            if deadline is not None and time.monotonic() > deadline:
                self._finish("expired", state)
                future.set_exception(
                    DeadlineExceededError("deadline passed while the request was queued")
                )
                continue
            try:
                result = fn(*args, **kwargs)
            except BaseException as error:  # noqa: BLE001 - relayed to the waiter
                self._finish("failed", state)
                future.set_exception(error)
            else:
                self._finish("served", state)
                future.set_result(result)
