"""Admission control: a bounded queue, deadlines and load shedding.

The serving front-end must degrade *predictably* under overload.  An
unbounded queue degrades unpredictably: every queued request eventually
completes, but tail latency grows without bound and the clients that gave up
long ago still consume server work.  The :class:`AdmissionController`
implements the standard counter-measures in one place, decoupled from the
HTTP layer so they are unit-testable with plain callables:

* **Bounded queue** — at most ``queue_depth`` requests wait for execution;
  a submission against a full queue is *shed* immediately
  (:class:`QueueFullError`, surfaced as HTTP 429).  Shedding costs
  microseconds, so the server stays responsive precisely when it is
  overloaded.
* **Per-request deadlines** — a request may carry an absolute deadline
  (``time.monotonic()`` domain).  Workers check it when they *dequeue* the
  request: if the deadline passed while the request waited, executing it
  would waste service capacity on an answer the client no longer wants, so
  it is rejected (:class:`DeadlineExceededError`, surfaced as HTTP 504)
  without touching the backend.
* **Graceful drain** — :meth:`AdmissionController.drain` flips the
  controller into a draining state (new submissions raise
  :class:`ServerDrainingError`, surfaced as HTTP 503), waits until every
  *admitted* request has been completed, then stops the worker threads.
  Admitted work is a promise: drain never abandons it.

Execution happens on a fixed pool of ``workers`` threads, so the controller
also bounds concurrency — the queue absorbs bursts, the workers bound the
parallel load on the backend.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass
from queue import Empty, Full, Queue
from typing import Any, Callable

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionSnapshot",
    "DeadlineExceededError",
    "QueueFullError",
    "ServerDrainingError",
]


class AdmissionError(RuntimeError):
    """Base class for admission-control rejections."""


class QueueFullError(AdmissionError):
    """The bounded request queue is full; the request was shed (HTTP 429)."""


class DeadlineExceededError(AdmissionError):
    """The request's deadline passed while it was queued (HTTP 504)."""


class ServerDrainingError(AdmissionError):
    """The controller is draining or closed; no new work is admitted (HTTP 503)."""


@dataclass(frozen=True)
class AdmissionSnapshot:
    """A consistent snapshot of the controller's counters.

    Attributes
    ----------
    admitted:
        Requests accepted into the queue since start.
    shed:
        Submissions rejected because the queue was full (429s).
    rejected:
        Submissions rejected because the controller was draining (503s).
    expired:
        Admitted requests rejected at dequeue because their deadline had
        already passed (504s).
    served:
        Admitted requests whose callable completed normally.
    failed:
        Admitted requests whose callable raised.
    queue_depth:
        Requests currently waiting for a worker.
    in_flight:
        Admitted requests not yet finished (queued + executing).
    max_queue_depth:
        High-water mark of ``queue_depth`` since start.
    draining:
        Whether :meth:`AdmissionController.drain` has been initiated.
    """

    admitted: int
    shed: int
    rejected: int
    expired: int
    served: int
    failed: int
    queue_depth: int
    in_flight: int
    max_queue_depth: int
    draining: bool

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the ``/stats`` endpoint."""
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "rejected": self.rejected,
            "expired": self.expired,
            "served": self.served,
            "failed": self.failed,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "max_queue_depth": self.max_queue_depth,
            "draining": self.draining,
        }


_STOP = object()


class AdmissionController:
    """Bounded-queue executor with deadlines, shedding and graceful drain.

    Examples
    --------
    >>> controller = AdmissionController(queue_depth=8, workers=2)
    >>> future = controller.submit(lambda: 21 * 2)
    >>> future.result()
    42
    >>> controller.drain()
    True
    """

    def __init__(
        self,
        *,
        queue_depth: int = 64,
        workers: int = 2,
        thread_name_prefix: str = "repro-serve",
    ) -> None:
        if int(queue_depth) < 1:
            raise ValueError("queue_depth must be >= 1")
        if int(workers) < 1:
            raise ValueError("workers must be >= 1")
        self.queue_depth = int(queue_depth)
        self.workers = int(workers)
        self._queue: Queue = Queue(maxsize=self.queue_depth)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._admitted = 0
        self._shed = 0
        self._rejected = 0
        self._expired = 0
        self._served = 0
        self._failed = 0
        self._in_flight = 0
        self._max_queue_depth = 0
        self._draining = False
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{thread_name_prefix}-{slot}",
                daemon=True,
            )
            for slot in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        deadline: float | None = None,
        **kwargs: Any,
    ) -> concurrent.futures.Future:
        """Admit ``fn(*args, **kwargs)`` for execution, or reject it now.

        ``deadline`` is an absolute ``time.monotonic()`` instant; ``None``
        means the request waits however long it takes.  Raises
        :class:`ServerDrainingError` when draining, :class:`QueueFullError`
        when the bounded queue is full.  The returned future resolves to the
        callable's result, its exception, or :class:`DeadlineExceededError`
        if the deadline passed before a worker picked the request up.
        """
        future: concurrent.futures.Future = concurrent.futures.Future()
        job = (fn, args, kwargs, deadline, future)
        with self._lock:
            if self._draining:
                self._rejected += 1
                raise ServerDrainingError("server is draining; not accepting new requests")
            try:
                self._queue.put_nowait(job)
            except Full:
                self._shed += 1
                raise QueueFullError(
                    f"request queue is full ({self.queue_depth} waiting); request shed"
                ) from None
            self._admitted += 1
            self._in_flight += 1
            depth = self._queue.qsize()
            if depth > self._max_queue_depth:
                self._max_queue_depth = depth
        return future

    # -- introspection ------------------------------------------------------------

    @property
    def current_queue_depth(self) -> int:
        """Requests currently waiting for a worker (approximate under races)."""
        return self._queue.qsize()

    @property
    def draining(self) -> bool:
        """Whether drain has been initiated."""
        return self._draining

    def stats(self) -> AdmissionSnapshot:
        """A consistent snapshot of the counters."""
        with self._lock:
            return AdmissionSnapshot(
                admitted=self._admitted,
                shed=self._shed,
                rejected=self._rejected,
                expired=self._expired,
                served=self._served,
                failed=self._failed,
                queue_depth=self._queue.qsize(),
                in_flight=self._in_flight,
                max_queue_depth=self._max_queue_depth,
                draining=self._draining,
            )

    # -- lifecycle ----------------------------------------------------------------

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Stop admitting, finish every admitted request, stop the workers.

        Returns ``True`` when every admitted request completed within
        ``timeout`` seconds (``None`` waits forever).  Even on timeout the
        workers are stopped — after their current request — so the method
        always leaves the controller closed; it never abandons a request
        silently (``False`` tells the caller in-flight work remained).
        Idempotent: later calls return immediately.
        """
        with self._lock:
            already_closed = self._closed
            self._draining = True
            if not already_closed:
                deadline = None if timeout is None else time.monotonic() + timeout
                while self._in_flight > 0:
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        break
                    self._idle.wait(timeout=remaining)
                drained = self._in_flight == 0
                self._closed = True
            else:
                drained = self._in_flight == 0
        if already_closed:
            return drained
        for _ in self._threads:
            # Blocking put: with in-flight work remaining (timeout path) the
            # queue may be full, but workers keep consuming, so the sentinel
            # lands as soon as a slot frees up.
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5.0)
        return drained

    def close(self) -> None:
        """Alias for :meth:`drain` with the default timeout."""
        self.drain()

    # -- workers ------------------------------------------------------------------

    def _finish(self, outcome: str) -> None:
        with self._lock:
            if outcome == "served":
                self._served += 1
            elif outcome == "failed":
                self._failed += 1
            else:
                self._expired += 1
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.notify_all()

    def _worker_loop(self) -> None:
        while True:
            try:
                job = self._queue.get(timeout=1.0)
            except Empty:
                continue
            if job is _STOP:
                return
            fn, args, kwargs, deadline, future = job
            if deadline is not None and time.monotonic() > deadline:
                self._finish("expired")
                future.set_exception(
                    DeadlineExceededError("deadline passed while the request was queued")
                )
                continue
            try:
                result = fn(*args, **kwargs)
            except BaseException as error:  # noqa: BLE001 - relayed to the waiter
                self._finish("failed")
                future.set_exception(error)
            else:
                self._finish("served")
                future.set_result(result)
