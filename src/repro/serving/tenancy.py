"""Tenant model: per-tenant SLOs, weights, configs and the tenant-config file.

A *tenant* is a named collection plus everything the server holds for it
individually: a :class:`~repro.vdms.system_config.SystemConfig` override, a
:class:`TenantSLO` (the paper's user-specific recall preference, expressed
as a serving-time objective), a fair-scheduling weight and a queue bound.
:class:`TenantSpec` bundles those, and :func:`load_tenant_config` parses the
JSON file the ``serve --tenant-config`` CLI flag points at:

.. code-block:: json

    {
        "tenants": {
            "search": {"weight": 2.0, "queue_depth": 64,
                       "slo": {"recall_floor": 0.95, "p99_latency_ms": 50.0},
                       "system_config": {"search_threads": 4}},
            "analytics": {"weight": 1.0,
                          "slo": {"recall_floor": 0.8, "cost_budget": 2.0}}
        }
    }

The SLO maps directly onto the tuner's constrained acquisition:
:meth:`TenantSLO.objective` builds the
:class:`~repro.core.objectives.ObjectiveSpec` whose ``recall_constraint``
drives recall-floor-constrained EHVI, and whose speed metric switches to
queries-per-dollar when the tenant declares a cost budget.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.objectives import ObjectiveSpec
from repro.vdms.system_config import SystemConfig

__all__ = ["TenantSLO", "TenantSpec", "load_tenant_config", "parse_tenant_config"]


@dataclass(frozen=True)
class TenantSLO:
    """A tenant's service-level objective.

    Attributes
    ----------
    recall_floor:
        Minimum acceptable recall@k in ``[0, 1]``; ``0.0`` means
        unconstrained.  This is the paper's user-specific recall preference,
        enforced by the tuner's constrained acquisition function.
    p99_latency_ms:
        Target p99 request latency in milliseconds, or ``None`` for no
        latency target.  Checked against measured serving latency, not
        promised by the tuner.
    cost_budget:
        Optional cost ceiling in $/hour.  Declaring one switches the
        tenant's tuning objective to queries-per-dollar (the paper's
        cost-aware QP$ metric).
    """

    recall_floor: float = 0.0
    p99_latency_ms: float | None = None
    cost_budget: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= float(self.recall_floor) <= 1.0:
            raise ValueError("recall_floor must be within [0, 1]")
        if self.p99_latency_ms is not None and not float(self.p99_latency_ms) > 0.0:
            raise ValueError("p99_latency_ms must be positive when set")
        if self.cost_budget is not None and not float(self.cost_budget) > 0.0:
            raise ValueError("cost_budget must be positive when set")

    def objective(self) -> ObjectiveSpec:
        """The tuning objective this SLO implies.

        A recall floor becomes the acquisition function's recall
        constraint; a cost budget switches the speed metric from QPS to
        queries-per-dollar.
        """
        return ObjectiveSpec(
            speed_metric="qp$" if self.cost_budget is not None else "qps",
            recall_constraint=float(self.recall_floor) if self.recall_floor > 0.0 else None,
        )

    def attained_by(self, recall: float, p99_latency_ms: float | None = None) -> bool:
        """Whether a measured (recall, p99 latency) point satisfies this SLO."""
        if recall + 1e-12 < self.recall_floor:
            return False
        if (
            self.p99_latency_ms is not None
            and p99_latency_ms is not None
            and p99_latency_ms > self.p99_latency_ms
        ):
            return False
        return True

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "TenantSLO":
        """Build from a plain mapping, rejecting unknown keys."""
        known = {"recall_floor", "p99_latency_ms", "cost_budget"}
        unknown = set(mapping) - known
        if unknown:
            raise ValueError(f"unknown TenantSLO fields: {sorted(unknown)}")
        return cls(
            recall_floor=float(mapping.get("recall_floor", 0.0)),
            p99_latency_ms=(
                float(mapping["p99_latency_ms"])
                if mapping.get("p99_latency_ms") is not None
                else None
            ),
            cost_budget=(
                float(mapping["cost_budget"])
                if mapping.get("cost_budget") is not None
                else None
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for stats endpoints and reports."""
        return {
            "recall_floor": self.recall_floor,
            "p99_latency_ms": self.p99_latency_ms,
            "cost_budget": self.cost_budget,
        }


@dataclass(frozen=True)
class TenantSpec:
    """Everything the serving stack holds for one tenant.

    ``system_config`` of ``None`` means the tenant inherits the server-wide
    default configuration; ``queue_depth`` of ``None`` inherits the
    controller's bound.
    """

    name: str
    weight: float = 1.0
    queue_depth: int | None = None
    slo: TenantSLO = field(default_factory=TenantSLO)
    system_config: SystemConfig | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not float(self.weight) > 0.0:
            raise ValueError("tenant weight must be positive")
        if self.queue_depth is not None and int(self.queue_depth) < 1:
            raise ValueError("tenant queue_depth must be >= 1 when set")

    @classmethod
    def from_mapping(cls, name: str, mapping: Mapping[str, Any]) -> "TenantSpec":
        """Build from one tenant's entry in the tenant-config file."""
        known = {"weight", "queue_depth", "slo", "system_config"}
        unknown = set(mapping) - known
        if unknown:
            raise ValueError(f"tenant {name!r}: unknown fields {sorted(unknown)}")
        slo_mapping = mapping.get("slo") or {}
        if not isinstance(slo_mapping, Mapping):
            raise ValueError(f"tenant {name!r}: 'slo' must be a mapping")
        config_mapping = mapping.get("system_config")
        system_config = None
        if config_mapping is not None:
            if not isinstance(config_mapping, Mapping):
                raise ValueError(f"tenant {name!r}: 'system_config' must be a mapping")
            system_config = SystemConfig.from_mapping(config_mapping)
        try:
            return cls(
                name=name,
                weight=float(mapping.get("weight", 1.0)),
                queue_depth=(
                    int(mapping["queue_depth"])
                    if mapping.get("queue_depth") is not None
                    else None
                ),
                slo=TenantSLO.from_mapping(slo_mapping),
                system_config=system_config,
            )
        except ValueError as error:
            raise ValueError(f"tenant {name!r}: {error}") from None


def parse_tenant_config(payload: Mapping[str, Any]) -> dict[str, TenantSpec]:
    """Parse a decoded tenant-config document into :class:`TenantSpec` objects.

    The document is ``{"tenants": {name: {...}}}``; a bare ``{name: {...}}``
    mapping (no ``tenants`` wrapper) is accepted too for hand-written files.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("tenant config must be a JSON object")
    tenants = payload.get("tenants", payload)
    if not isinstance(tenants, Mapping) or not tenants:
        raise ValueError("tenant config must map tenant names to specs")
    specs: dict[str, TenantSpec] = {}
    for name, mapping in tenants.items():
        if not isinstance(mapping, Mapping):
            raise ValueError(f"tenant {name!r}: spec must be a mapping")
        specs[str(name)] = TenantSpec.from_mapping(str(name), mapping)
    return specs


def load_tenant_config(path: str) -> dict[str, TenantSpec]:
    """Load and parse the JSON tenant-config file behind ``--tenant-config``."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"tenant config {path!r} is not valid JSON: {error}") from None
    return parse_tenant_config(payload)
