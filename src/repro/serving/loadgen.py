"""Open-loop load generation against the serving front-end.

The distinction this module exists for: a **closed-loop** client (issue a
request, wait for the answer, issue the next) can never drive a server past
saturation — when the server slows down, the client slows down with it, so
measured latency stays flat and the saturation point is invisible.  Real
traffic is **open-loop**: arrivals do not care how the server is doing.
:class:`LoadGenerator` therefore precomputes a Poisson arrival schedule
(exponential inter-arrival gaps at the target rate) and dispatches each
request at its scheduled instant regardless of outstanding work.  Offered
load beyond capacity then shows up the only ways it can: queueing delay
(latency tail), shed requests (429), expired deadlines (504).

The generator records, per run (:class:`LoadReport`): achieved vs offered
QPS, served-request latency quantiles (p50/p99/p99.9), shed/expired/rejected
counts, client dispatch lag (how late requests left the client — the
open-loop guarantee being auditable), and a queue-depth time series sampled
from the server's ``/stats`` endpoint.

:func:`measure_saturation` is the deliberate closed-loop complement: a few
back-to-back worker loops measure the server's maximum sustainable
throughput, which the open-loop phases are then scaled against.
"""

from __future__ import annotations

import http.client
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import urlsplit

import numpy as np

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "MixedLoadReport",
    "MultiTenantLoadGenerator",
    "TenantLoadProfile",
    "measure_saturation",
    "run_load",
    "run_mixed_load",
]


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return float("nan")
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


@dataclass
class LoadReport:
    """Outcome of one open-loop run.

    Attributes
    ----------
    offered_qps:
        The target arrival rate of the Poisson schedule.
    achieved_qps:
        Requests actually dispatched per second of wall-clock run time
        (lower than offered only if the client itself could not keep up —
        check ``dispatch_lag_p99_ms``).
    served / shed / expired / rejected / errors:
        Final request outcomes: HTTP 200 / 429 (queue full) / 504 (deadline
        passed while queued) / 503 (draining) / anything else.
    latency_p50_ms, latency_p99_ms, latency_p999_ms:
        Quantiles over *served* requests only — shed requests fail in
        microseconds and would flatter the tail.
    dispatch_lag_p99_ms:
        How late requests left the client relative to their scheduled
        arrival instant.  Large values mean the client saturated before the
        server did and "offered" overstates the real arrival rate.
    queue_depth_mean / queue_depth_max / queue_depth_samples:
        Server-side admission-queue depth sampled from ``/stats`` during
        the run (empty when sampling is disabled).
    """

    offered_qps: float
    duration_seconds: float
    sent: int
    served: int
    shed: int
    expired: int
    rejected: int
    errors: int
    achieved_qps: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_p999_ms: float
    dispatch_lag_p99_ms: float
    queue_depth_mean: float
    queue_depth_max: int
    queue_depth_samples: list[int] = field(default_factory=list)

    @property
    def shed_rate(self) -> float:
        """Fraction of sent requests shed with 429."""
        return self.shed / self.sent if self.sent else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (CLI ``--json`` output and benchmark reports)."""
        return {
            "offered_qps": self.offered_qps,
            "duration_seconds": self.duration_seconds,
            "sent": self.sent,
            "served": self.served,
            "shed": self.shed,
            "expired": self.expired,
            "rejected": self.rejected,
            "errors": self.errors,
            "achieved_qps": self.achieved_qps,
            "shed_rate": self.shed_rate,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_p999_ms": self.latency_p999_ms,
            "dispatch_lag_p99_ms": self.dispatch_lag_p99_ms,
            "queue_depth_mean": self.queue_depth_mean,
            "queue_depth_max": self.queue_depth_max,
        }


class _Client:
    """Minimal JSON-over-HTTP client with a persistent connection."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"expected an http://host:port URL, got {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def request(self, method: str, path: str, body: dict | None = None) -> tuple[int, dict]:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in range(2):  # one retry on a dropped keep-alive connection
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=payload, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt == 1:
                    raise
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        return response.status, decoded

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


class LoadGenerator:
    """Open-loop (Poisson-arrival) load generator for a serving front-end.

    Parameters
    ----------
    url:
        Base URL of a running :class:`~repro.serving.server.ServingFrontend`.
    collection:
        Collection to search; its dimension is resolved over HTTP unless
        ``dimension`` is given.
    qps:
        Target offered arrival rate.
    duration_seconds:
        Length of the arrival schedule.
    deadline_ms:
        Optional per-request deadline forwarded in each search body.
    use_cache:
        Forwarded to the search endpoint; the default benchmark setting is
        ``False`` so every request costs real scatter-gather work.
    sample_stats_every:
        Interval of the ``/stats`` queue-depth sampler; ``None`` disables
        sampling.
    max_client_threads:
        Size of the client worker pool.  Each worker keeps one persistent
        HTTP connection, so the pool bounds concurrent in-flight requests;
        it must comfortably exceed (offered QPS × server latency) or the
        client turns closed-loop — dispatch lag in the report reveals when
        it did.
    """

    def __init__(
        self,
        url: str,
        collection: str,
        *,
        qps: float,
        duration_seconds: float,
        dimension: int | None = None,
        top_k: int = 10,
        deadline_ms: float | None = None,
        use_cache: bool = True,
        seed: int = 0,
        sample_stats_every: float | None = 0.1,
        max_client_threads: int = 64,
    ) -> None:
        if not qps > 0:
            raise ValueError("qps must be positive")
        if not duration_seconds > 0:
            raise ValueError("duration_seconds must be positive")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if max_client_threads < 1:
            raise ValueError("max_client_threads must be >= 1")
        self.url = url.rstrip("/")
        self.collection = collection
        self.qps = float(qps)
        self.duration_seconds = float(duration_seconds)
        self.dimension = dimension
        self.top_k = int(top_k)
        self.deadline_ms = deadline_ms
        self.use_cache = bool(use_cache)
        self.seed = int(seed)
        self.sample_stats_every = sample_stats_every
        self.max_client_threads = int(max_client_threads)
        self._local = threading.local()

    # -- plumbing -----------------------------------------------------------------

    def _client(self) -> _Client:
        client = getattr(self._local, "client", None)
        if client is None:
            client = _Client(self.url)
            self._local.client = client
        return client

    def _resolve_dimension(self) -> int:
        if self.dimension is not None:
            return int(self.dimension)
        status, payload = self._client().request(
            "GET", f"/collections/{self.collection}"
        )
        if status != 200:
            raise RuntimeError(
                f"cannot resolve dimension of collection {self.collection!r}: "
                f"HTTP {status} {payload.get('error', '')}"
            )
        self.dimension = int(payload["dimension"])
        return self.dimension

    # -- the run ------------------------------------------------------------------

    def run(self) -> LoadReport:
        """Execute the schedule and aggregate a :class:`LoadReport`."""
        dimension = self._resolve_dimension()
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(1.0 / self.qps, size=max(1, int(self.qps * self.duration_seconds * 2)))
        arrivals = np.cumsum(gaps)
        arrivals = arrivals[arrivals < self.duration_seconds]
        queries = rng.normal(size=(max(1, len(arrivals)), dimension)).astype(np.float32)

        lock = threading.Lock()
        latencies: list[float] = []
        lags: list[float] = []
        counts = {"served": 0, "shed": 0, "expired": 0, "rejected": 0, "errors": 0}
        depth_samples: list[int] = []
        stop_sampling = threading.Event()

        def fire(index: int, scheduled: float, start: float) -> None:
            body = {
                "queries": [queries[index].tolist()],
                "top_k": self.top_k,
                "use_cache": self.use_cache,
            }
            if self.deadline_ms is not None:
                body["deadline_ms"] = float(self.deadline_ms)
            dispatched = time.monotonic()
            try:
                status, _ = self._client().request(
                    "POST", f"/collections/{self.collection}/search", body
                )
            except Exception:
                with lock:
                    counts["errors"] += 1
                return
            finished = time.monotonic()
            with lock:
                lags.append((dispatched - start - scheduled) * 1000.0)
                if status == 200:
                    counts["served"] += 1
                    latencies.append((finished - dispatched) * 1000.0)
                elif status == 429:
                    counts["shed"] += 1
                elif status == 504:
                    counts["expired"] += 1
                elif status == 503:
                    counts["rejected"] += 1
                else:
                    counts["errors"] += 1

        def sample_stats() -> None:
            client = _Client(self.url)
            try:
                while not stop_sampling.wait(self.sample_stats_every):
                    try:
                        status, payload = client.request("GET", "/stats")
                    except Exception:
                        continue
                    if status == 200:
                        with lock:
                            depth_samples.append(int(payload.get("queue_depth", 0)))
            finally:
                client.close()

        sampler = None
        if self.sample_stats_every is not None:
            sampler = threading.Thread(
                target=sample_stats, name="repro-loadgen-stats", daemon=True
            )
            sampler.start()

        # A fixed worker pool with one persistent keep-alive connection per
        # worker: spawning a thread (and a TCP connection) per request would
        # cost more than the request itself and poison the latency samples.
        # The dispatcher below stays open-loop — it enqueues each request at
        # its scheduled instant regardless of outstanding work; an idle
        # worker picks it up immediately.
        work: queue.Queue = queue.Queue()
        start_box: list[float] = []
        ready = threading.Event()

        def worker_loop() -> None:
            ready.wait(30.0)
            while True:
                item = work.get()
                if item is None:
                    return
                index, scheduled = item
                fire(index, scheduled, start_box[0])

        workers = [
            threading.Thread(target=worker_loop, name=f"repro-loadgen-{slot}", daemon=True)
            for slot in range(self.max_client_threads)
        ]
        for thread in workers:
            thread.start()

        start = time.monotonic()
        start_box.append(start)
        ready.set()
        sent = 0
        for index, scheduled in enumerate(arrivals):
            # Open-loop dispatch: sleep until the scheduled instant, never
            # until the previous response.
            delay = start + float(scheduled) - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            work.put((index, float(scheduled)))
            sent += 1
        for _ in workers:
            work.put(None)
        for thread in workers:
            thread.join(timeout=120.0)
        elapsed = time.monotonic() - start
        stop_sampling.set()
        if sampler is not None:
            sampler.join(timeout=5.0)

        return LoadReport(
            offered_qps=self.qps,
            duration_seconds=elapsed,
            sent=sent,
            served=counts["served"],
            shed=counts["shed"],
            expired=counts["expired"],
            rejected=counts["rejected"],
            errors=counts["errors"],
            achieved_qps=sent / elapsed if elapsed > 0 else 0.0,
            latency_p50_ms=_percentile(latencies, 50),
            latency_p99_ms=_percentile(latencies, 99),
            latency_p999_ms=_percentile(latencies, 99.9),
            dispatch_lag_p99_ms=_percentile(lags, 99),
            queue_depth_mean=float(np.mean(depth_samples)) if depth_samples else 0.0,
            queue_depth_max=max(depth_samples) if depth_samples else 0,
            queue_depth_samples=depth_samples,
        )


def run_load(url: str, collection: str, *, qps: float, duration_seconds: float, **kwargs: Any) -> LoadReport:
    """One-shot convenience wrapper around :class:`LoadGenerator`."""
    return LoadGenerator(
        url, collection, qps=qps, duration_seconds=duration_seconds, **kwargs
    ).run()


@dataclass(frozen=True)
class TenantLoadProfile:
    """One tenant's share of a mixed multi-tenant traffic schedule.

    Attributes
    ----------
    collection:
        The tenant's collection (and admission-ledger name).
    qps:
        The tenant's own Poisson arrival rate.
    top_k, deadline_ms, use_cache:
        Per-request search parameters, as in :class:`LoadGenerator`.
    popularity_skew:
        Zipf exponent over the tenant's query pool: ``0`` draws queries
        uniformly, larger values concentrate traffic on a few hot queries
        (which is what makes the tenant's result cache earn hits).
    query_pool:
        Number of distinct queries the tenant draws from.
    filter:
        Optional attribute filter forwarded in every search body, as a
        ``{"field": ..., "op": ..., "value": ...}`` mapping — per-tenant
        filter profiles exercise completely different execution plans.
    dimension:
        Vector dimension; resolved over HTTP when ``None``.
    """

    collection: str
    qps: float
    top_k: int = 10
    deadline_ms: float | None = None
    use_cache: bool = True
    popularity_skew: float = 0.0
    query_pool: int = 256
    filter: dict[str, Any] | None = None
    dimension: int | None = None

    def __post_init__(self) -> None:
        if not self.collection:
            raise ValueError("collection must be non-empty")
        if not self.qps > 0:
            raise ValueError("qps must be positive")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.popularity_skew < 0:
            raise ValueError("popularity_skew must be >= 0")
        if self.query_pool < 1:
            raise ValueError("query_pool must be >= 1")
        if self.deadline_ms is not None and not float(self.deadline_ms) > 0:
            raise ValueError("deadline_ms must be positive when set")


@dataclass
class MixedLoadReport:
    """Per-tenant :class:`LoadReport` entries of one mixed open-loop run."""

    tenants: dict[str, LoadReport]
    duration_seconds: float

    @property
    def total_sent(self) -> int:
        """Requests dispatched across all tenants."""
        return sum(report.sent for report in self.tenants.values())

    @property
    def total_served(self) -> int:
        """Requests served across all tenants."""
        return sum(report.served for report in self.tenants.values())

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for benchmark reports."""
        return {
            "duration_seconds": self.duration_seconds,
            "total_sent": self.total_sent,
            "total_served": self.total_served,
            "tenants": {name: report.to_dict() for name, report in self.tenants.items()},
        }


class MultiTenantLoadGenerator:
    """Mixed multi-tenant open-loop traffic against one front-end.

    Each :class:`TenantLoadProfile` gets its own Poisson arrival schedule at
    its own rate; the schedules are merged into a single time-ordered
    dispatch plan served by one shared client worker pool — the same
    open-loop discipline as :class:`LoadGenerator`, so a burst tenant's
    arrivals keep coming whether or not the server keeps up, and whatever
    isolation the server provides (or fails to provide) shows up in the
    *per-tenant* latency tails and shed counts this generator reports.

    The queue-depth sampler reads each tenant's depth from the ``tenants``
    map of ``/stats``, so per-tenant backlog growth is auditable too.
    """

    def __init__(
        self,
        url: str,
        profiles: list[TenantLoadProfile],
        *,
        duration_seconds: float,
        seed: int = 0,
        sample_stats_every: float | None = 0.1,
        max_client_threads: int = 64,
    ) -> None:
        if not profiles:
            raise ValueError("at least one tenant profile is required")
        names = [profile.collection for profile in profiles]
        if len(set(names)) != len(names):
            raise ValueError("tenant collections must be unique")
        if not duration_seconds > 0:
            raise ValueError("duration_seconds must be positive")
        if max_client_threads < 1:
            raise ValueError("max_client_threads must be >= 1")
        self.url = url.rstrip("/")
        self.profiles = list(profiles)
        self.duration_seconds = float(duration_seconds)
        self.seed = int(seed)
        self.sample_stats_every = sample_stats_every
        self.max_client_threads = int(max_client_threads)
        self._local = threading.local()

    def _client(self) -> _Client:
        client = getattr(self._local, "client", None)
        if client is None:
            client = _Client(self.url)
            self._local.client = client
        return client

    def _resolve_dimension(self, profile: TenantLoadProfile) -> int:
        if profile.dimension is not None:
            return int(profile.dimension)
        status, payload = self._client().request(
            "GET", f"/collections/{profile.collection}"
        )
        if status != 200:
            raise RuntimeError(
                f"cannot resolve dimension of collection {profile.collection!r}: "
                f"HTTP {status} {payload.get('error', '')}"
            )
        return int(payload["dimension"])

    def run(self) -> MixedLoadReport:
        """Execute the merged schedule and report per tenant."""
        rng = np.random.default_rng(self.seed)
        pools: list[np.ndarray] = []
        schedules: list[tuple[float, int, int]] = []  # (arrival, tenant, query index)
        for tenant_index, profile in enumerate(self.profiles):
            dimension = self._resolve_dimension(profile)
            pool = rng.normal(size=(profile.query_pool, dimension)).astype(np.float32)
            pools.append(pool)
            gaps = rng.exponential(
                1.0 / profile.qps,
                size=max(1, int(profile.qps * self.duration_seconds * 2)),
            )
            arrivals = np.cumsum(gaps)
            arrivals = arrivals[arrivals < self.duration_seconds]
            if profile.popularity_skew > 0.0:
                ranks = np.arange(1, profile.query_pool + 1, dtype=np.float64)
                weights = ranks ** (-profile.popularity_skew)
                weights /= weights.sum()
                picks = rng.choice(profile.query_pool, size=len(arrivals), p=weights)
            else:
                picks = rng.integers(0, profile.query_pool, size=len(arrivals))
            for arrival, pick in zip(arrivals, picks):
                schedules.append((float(arrival), tenant_index, int(pick)))
        schedules.sort()

        lock = threading.Lock()
        latencies: list[list[float]] = [[] for _ in self.profiles]
        lags: list[list[float]] = [[] for _ in self.profiles]
        counts = [
            {"sent": 0, "served": 0, "shed": 0, "expired": 0, "rejected": 0, "errors": 0}
            for _ in self.profiles
        ]
        depth_samples: list[list[int]] = [[] for _ in self.profiles]
        stop_sampling = threading.Event()

        def fire(tenant_index: int, query_index: int, scheduled: float, start: float) -> None:
            profile = self.profiles[tenant_index]
            body: dict[str, Any] = {
                "queries": [pools[tenant_index][query_index].tolist()],
                "top_k": profile.top_k,
                "use_cache": profile.use_cache,
            }
            if profile.deadline_ms is not None:
                body["deadline_ms"] = float(profile.deadline_ms)
            if profile.filter is not None:
                body["filter"] = dict(profile.filter)
            dispatched = time.monotonic()
            try:
                status, _ = self._client().request(
                    "POST", f"/collections/{profile.collection}/search", body
                )
            except Exception:
                with lock:
                    counts[tenant_index]["errors"] += 1
                return
            finished = time.monotonic()
            with lock:
                lags[tenant_index].append((dispatched - start - scheduled) * 1000.0)
                if status == 200:
                    counts[tenant_index]["served"] += 1
                    latencies[tenant_index].append((finished - dispatched) * 1000.0)
                elif status == 429:
                    counts[tenant_index]["shed"] += 1
                elif status == 504:
                    counts[tenant_index]["expired"] += 1
                elif status == 503:
                    counts[tenant_index]["rejected"] += 1
                else:
                    counts[tenant_index]["errors"] += 1

        def sample_stats() -> None:
            client = _Client(self.url)
            name_to_index = {
                profile.collection: i for i, profile in enumerate(self.profiles)
            }
            try:
                while not stop_sampling.wait(self.sample_stats_every):
                    try:
                        status, payload = client.request("GET", "/stats")
                    except Exception:
                        continue
                    if status != 200:
                        continue
                    tenants = payload.get("tenants") or {}
                    with lock:
                        for name, index in name_to_index.items():
                            entry = tenants.get(name)
                            if entry is not None:
                                depth_samples[index].append(int(entry.get("queue_depth", 0)))
            finally:
                client.close()

        sampler = None
        if self.sample_stats_every is not None:
            sampler = threading.Thread(
                target=sample_stats, name="repro-mixed-loadgen-stats", daemon=True
            )
            sampler.start()

        work: queue.Queue = queue.Queue()
        start_box: list[float] = []
        ready = threading.Event()

        def worker_loop() -> None:
            ready.wait(30.0)
            while True:
                item = work.get()
                if item is None:
                    return
                tenant_index, query_index, scheduled = item
                fire(tenant_index, query_index, scheduled, start_box[0])

        workers = [
            threading.Thread(
                target=worker_loop, name=f"repro-mixed-loadgen-{slot}", daemon=True
            )
            for slot in range(self.max_client_threads)
        ]
        for thread in workers:
            thread.start()

        start = time.monotonic()
        start_box.append(start)
        ready.set()
        for scheduled, tenant_index, query_index in schedules:
            delay = start + scheduled - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            work.put((tenant_index, query_index, scheduled))
            with lock:
                counts[tenant_index]["sent"] += 1
        for _ in workers:
            work.put(None)
        for thread in workers:
            thread.join(timeout=120.0)
        elapsed = time.monotonic() - start
        stop_sampling.set()
        if sampler is not None:
            sampler.join(timeout=5.0)

        reports: dict[str, LoadReport] = {}
        for index, profile in enumerate(self.profiles):
            tenant_counts = counts[index]
            samples = depth_samples[index]
            reports[profile.collection] = LoadReport(
                offered_qps=profile.qps,
                duration_seconds=elapsed,
                sent=tenant_counts["sent"],
                served=tenant_counts["served"],
                shed=tenant_counts["shed"],
                expired=tenant_counts["expired"],
                rejected=tenant_counts["rejected"],
                errors=tenant_counts["errors"],
                achieved_qps=tenant_counts["sent"] / elapsed if elapsed > 0 else 0.0,
                latency_p50_ms=_percentile(latencies[index], 50),
                latency_p99_ms=_percentile(latencies[index], 99),
                latency_p999_ms=_percentile(latencies[index], 99.9),
                dispatch_lag_p99_ms=_percentile(lags[index], 99),
                queue_depth_mean=float(np.mean(samples)) if samples else 0.0,
                queue_depth_max=max(samples) if samples else 0,
                queue_depth_samples=samples,
            )
        return MixedLoadReport(tenants=reports, duration_seconds=elapsed)


def run_mixed_load(
    url: str,
    profiles: list[TenantLoadProfile],
    *,
    duration_seconds: float,
    **kwargs: Any,
) -> MixedLoadReport:
    """One-shot convenience wrapper around :class:`MultiTenantLoadGenerator`."""
    return MultiTenantLoadGenerator(
        url, profiles, duration_seconds=duration_seconds, **kwargs
    ).run()


def measure_saturation(
    url: str,
    collection: str,
    *,
    threads: int = 4,
    duration_seconds: float = 1.5,
    dimension: int | None = None,
    top_k: int = 10,
    use_cache: bool = False,
    seed: int = 0,
) -> float:
    """Closed-loop saturation probe: maximum sustainable served QPS.

    Runs ``threads`` back-to-back request loops for ``duration_seconds`` and
    returns served requests per second.  Being closed-loop it cannot
    overload the server — which is exactly why the number it returns is the
    capacity the open-loop phases should be scaled against.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    probe = LoadGenerator(
        url,
        collection,
        qps=1.0,  # unused; we only borrow dimension resolution + clients
        duration_seconds=1.0,
        dimension=dimension,
        top_k=top_k,
        use_cache=use_cache,
        seed=seed,
        sample_stats_every=None,
    )
    resolved = probe._resolve_dimension()
    rng = np.random.default_rng(seed)
    queries = rng.normal(size=(256, resolved)).astype(np.float32)
    served = 0
    lock = threading.Lock()
    deadline = time.monotonic() + float(duration_seconds)

    def loop(slot: int) -> None:
        nonlocal served
        client = _Client(url)
        body_base = {"top_k": top_k, "use_cache": use_cache}
        index = slot
        try:
            while time.monotonic() < deadline:
                body = dict(body_base)
                body["queries"] = [queries[index % len(queries)].tolist()]
                index += threads
                try:
                    status, _ = client.request(
                        "POST", f"/collections/{collection}/search", body
                    )
                except Exception:
                    continue
                if status == 200:
                    with lock:
                        served += 1
        finally:
            client.close()

    workers = [
        threading.Thread(target=loop, args=(slot,), name=f"repro-saturate-{slot}", daemon=True)
        for slot in range(threads)
    ]
    start = time.monotonic()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=duration_seconds + 30.0)
    elapsed = time.monotonic() - start
    return served / elapsed if elapsed > 0 else 0.0
