"""Shapley-value parameter attribution (Figure 13b).

The paper uses SHAP to ask "how much does each parameter of the chosen
configuration contribute to memory usage and to search speed, relative to an
average configuration?".  This module computes the same quantity directly:
the exact Shapley value of each selected parameter, where a coalition's value
is the metric obtained by evaluating a configuration that takes the
coalition's parameters from the *target* configuration and every other
parameter from the *baseline* configuration.

Exact Shapley values need ``2^k`` evaluations for ``k`` attributed
parameters, so callers attribute a handful of parameters at a time (the
figure attributes four) and may group the rest as "other parameters".  A
permutation-sampling estimator is provided for larger ``k``.
"""

from __future__ import annotations

from itertools import combinations
from math import factorial
from typing import Any, Callable, Mapping, Sequence

import numpy as np

__all__ = ["shapley_attribution"]


def _coalition_value(
    evaluate: Callable[[Mapping[str, Any]], float],
    target: Mapping[str, Any],
    baseline: Mapping[str, Any],
    coalition: Sequence[str],
) -> float:
    values = dict(baseline)
    for name in coalition:
        values[name] = target[name]
    return float(evaluate(values))


def shapley_attribution(
    evaluate: Callable[[Mapping[str, Any]], float],
    target: Mapping[str, Any],
    baseline: Mapping[str, Any],
    parameters: Sequence[str],
    *,
    max_exact: int = 10,
    num_permutations: int = 64,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """Shapley contribution of each parameter to ``evaluate``.

    Parameters
    ----------
    evaluate:
        Maps a full configuration mapping to the scalar metric being
        attributed (memory in GiB, or QPS).
    target:
        The configuration whose metric is being explained.
    baseline:
        The reference configuration (the paper uses the average sampled
        configuration; the default configuration is a reasonable stand-in).
    parameters:
        The parameter names to attribute.  Parameters not listed stay at the
        baseline value in every coalition.
    max_exact:
        Up to this many parameters the exact Shapley value is computed;
        beyond it the permutation-sampling estimator is used.
    num_permutations:
        Number of sampled permutations for the estimator.
    rng:
        Random generator for the estimator.

    Returns
    -------
    dict
        Parameter name → Shapley contribution.  Contributions sum to
        ``evaluate(target restricted to parameters) - evaluate(baseline)``.
    """
    parameters = list(parameters)
    if not parameters:
        return {}
    for name in parameters:
        if name not in target or name not in baseline:
            raise KeyError(f"parameter {name!r} missing from target or baseline")

    if len(parameters) <= max_exact:
        return _exact_shapley(evaluate, target, baseline, parameters)
    return _sampled_shapley(evaluate, target, baseline, parameters, num_permutations, rng)


def _exact_shapley(
    evaluate: Callable[[Mapping[str, Any]], float],
    target: Mapping[str, Any],
    baseline: Mapping[str, Any],
    parameters: list[str],
) -> dict[str, float]:
    k = len(parameters)
    cache: dict[frozenset, float] = {}

    def value(coalition: frozenset) -> float:
        if coalition not in cache:
            cache[coalition] = _coalition_value(evaluate, target, baseline, sorted(coalition))
        return cache[coalition]

    contributions = {name: 0.0 for name in parameters}
    for name in parameters:
        others = [p for p in parameters if p != name]
        for size in range(len(others) + 1):
            weight = factorial(size) * factorial(k - size - 1) / factorial(k)
            for subset in combinations(others, size):
                coalition = frozenset(subset)
                marginal = value(coalition | {name}) - value(coalition)
                contributions[name] += weight * marginal
    return contributions


def _sampled_shapley(
    evaluate: Callable[[Mapping[str, Any]], float],
    target: Mapping[str, Any],
    baseline: Mapping[str, Any],
    parameters: list[str],
    num_permutations: int,
    rng: np.random.Generator | None,
) -> dict[str, float]:
    rng = rng or np.random.default_rng(0)
    contributions = {name: 0.0 for name in parameters}
    for _ in range(max(1, num_permutations)):
        order = list(rng.permutation(parameters))
        coalition: list[str] = []
        previous = _coalition_value(evaluate, target, baseline, coalition)
        for name in order:
            coalition.append(name)
            current = _coalition_value(evaluate, target, baseline, coalition)
            contributions[name] += current - previous
            previous = current
    return {name: total / num_permutations for name, total in contributions.items()}
