"""Optimization curves and sample/time efficiency (Figure 7).

The paper compares tuners by the best search speed found so far as a
function of (a) the number of evaluated configurations and (b) the simulated
tuning time, restricted to configurations whose recall satisfies the user's
floor.
"""

from __future__ import annotations

import numpy as np

from repro.core.history import ObservationHistory
from repro.core.tuner import TuningReport

__all__ = ["best_so_far_curve", "iterations_to_reach", "time_to_reach"]


def best_so_far_curve(history: ObservationHistory, *, recall_floor: float = 0.0) -> np.ndarray:
    """Best speed found up to each iteration, subject to a recall floor.

    Iterations whose configuration violates the floor (or failed) do not
    improve the curve; the returned array has one entry per observation.
    """
    best = 0.0
    curve = np.zeros(len(history), dtype=float)
    for position, observation in enumerate(history):
        if not observation.failed and observation.recall >= recall_floor:
            best = max(best, observation.speed)
        curve[position] = best
    return curve


def iterations_to_reach(
    history: ObservationHistory,
    target_speed: float,
    *,
    recall_floor: float = 0.0,
) -> int | None:
    """First iteration (1-based) at which the best-so-far speed reaches the target."""
    curve = best_so_far_curve(history, recall_floor=recall_floor)
    reached = np.flatnonzero(curve >= target_speed)
    return None if reached.size == 0 else int(reached[0]) + 1


def time_to_reach(
    report: TuningReport,
    target_speed: float,
    *,
    recall_floor: float = 0.0,
) -> float | None:
    """Simulated tuning seconds needed to reach the target speed.

    The clock charged per iteration is the replay time of every evaluation up
    to and including the one that reached the target, plus the tuner's
    recommendation time prorated per iteration — the same accounting as the
    paper's tuning-time comparison.
    """
    iteration = iterations_to_reach(report.history, target_speed, recall_floor=recall_floor)
    if iteration is None:
        return None
    replay = sum(o.result.replay_seconds for o in report.history.observations[:iteration])
    per_iteration_recommendation = (
        report.recommendation_seconds / max(1, len(report.history))
    )
    return float(replay + per_iteration_recommendation * iteration)
