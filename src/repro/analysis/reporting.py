"""Plain-text table formatting for the benchmark harness.

The benchmark scripts print the same rows/series the paper's tables and
figures report; this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _render_cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered_rows = [[_render_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line([str(h) for h in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
