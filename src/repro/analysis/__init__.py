"""Analysis utilities: the metrics the paper's tables and figures report.

* :mod:`repro.analysis.tradeoff` — best speed under a recall sacrifice,
  trade-off ability (Figure 6).
* :mod:`repro.analysis.improvement` — improvement over the default
  configuration (Table IV).
* :mod:`repro.analysis.curves` — best-so-far optimization curves and
  sample/time-to-target efficiency (Figure 7).
* :mod:`repro.analysis.attribution` — Shapley-style parameter attribution
  (Figure 13b).
* :mod:`repro.analysis.reporting` — plain-text tables used by the benchmark
  harness.
"""

from repro.analysis.tradeoff import (
    best_speed_at_sacrifice,
    speed_vs_sacrifice_curve,
    tradeoff_ability,
)
from repro.analysis.improvement import improvement_over_default
from repro.analysis.curves import best_so_far_curve, iterations_to_reach, time_to_reach
from repro.analysis.attribution import shapley_attribution
from repro.analysis.reporting import format_table

__all__ = [
    "best_so_far_curve",
    "best_speed_at_sacrifice",
    "format_table",
    "improvement_over_default",
    "iterations_to_reach",
    "shapley_attribution",
    "speed_vs_sacrifice_curve",
    "time_to_reach",
    "tradeoff_ability",
]
