"""Improvement over the default configuration (Table IV).

The paper defines the improvement of a tuner as the maximum enhancement in
search speed (or recall rate) achievable *without sacrificing* the other
objective relative to the default configuration's performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.history import ObservationHistory
from repro.workloads.replay import EvaluationResult

__all__ = ["ImprovementReport", "improvement_over_default"]


@dataclass(frozen=True)
class ImprovementReport:
    """Speed and recall improvement of a tuning run over the default setting.

    Attributes
    ----------
    speed_improvement:
        Relative speed gain (e.g. ``0.14`` for +14 %) of the best
        configuration whose recall is at least the default's recall.
    recall_improvement:
        Relative recall gain of the best configuration whose speed is at
        least the default's speed.
    default_speed, default_recall:
        The default configuration's objectives, for reference.
    """

    speed_improvement: float
    recall_improvement: float
    default_speed: float
    default_recall: float


def improvement_over_default(
    history: ObservationHistory,
    default_result: EvaluationResult,
    *,
    speed_metric: str = "qps",
) -> ImprovementReport:
    """Compute Table IV's improvement numbers for one tuning run."""
    default_speed, default_recall = default_result.objective_values(speed_metric)
    default_speed = max(default_speed, 1e-9)
    default_recall = max(default_recall, 1e-9)

    best_speed = default_speed
    best_recall = default_recall
    for observation in history.successful():
        if observation.recall >= default_recall and observation.speed > best_speed:
            best_speed = observation.speed
        if observation.speed >= default_speed and observation.recall > best_recall:
            best_recall = observation.recall

    return ImprovementReport(
        speed_improvement=(best_speed - default_speed) / default_speed,
        recall_improvement=(best_recall - default_recall) / default_recall,
        default_speed=default_speed,
        default_recall=default_recall,
    )
