"""Speed-versus-recall trade-off metrics (Figure 6).

The paper reports, for every tuner, the best search speed achieved under a
given *sacrifice in recall rate*: a sacrifice of ``s`` admits configurations
with recall at least ``1 - s``.  The "trade-off ability" of a tuner is the
standard deviation of those best speeds across sacrifices — a tuner that
trades off well keeps its speed high even as the recall requirement tightens,
giving a low deviation.
"""

from __future__ import annotations

import numpy as np

from repro.core.history import ObservationHistory

__all__ = [
    "DEFAULT_SACRIFICES",
    "best_speed_at_sacrifice",
    "speed_vs_sacrifice_curve",
    "tradeoff_ability",
]

#: The sacrifices used throughout the paper's evaluation (0.15 down to 0.01).
DEFAULT_SACRIFICES: tuple[float, ...] = (0.15, 0.125, 0.1, 0.075, 0.05, 0.025, 0.01)


def best_speed_at_sacrifice(history: ObservationHistory, sacrifice: float) -> float:
    """Best observed speed among configurations with recall >= 1 - sacrifice.

    Returns 0 when no configuration satisfies the recall requirement.
    """
    if not 0.0 <= sacrifice < 1.0:
        raise ValueError("sacrifice must lie in [0, 1)")
    floor = 1.0 - sacrifice
    best = history.best(recall_floor=floor)
    return 0.0 if best is None else float(best.speed)


def speed_vs_sacrifice_curve(
    history: ObservationHistory,
    sacrifices: tuple[float, ...] = DEFAULT_SACRIFICES,
) -> dict[float, float]:
    """Best speed for every sacrifice level (one Figure 6 series)."""
    return {float(s): best_speed_at_sacrifice(history, s) for s in sacrifices}


def tradeoff_ability(
    history: ObservationHistory,
    sacrifices: tuple[float, ...] = DEFAULT_SACRIFICES,
) -> float:
    """Standard deviation of best speeds across sacrifices (lower is better)."""
    speeds = np.array(list(speed_vs_sacrifice_curve(history, sacrifices).values()), dtype=float)
    if speeds.size == 0:
        return 0.0
    return float(speeds.std())
