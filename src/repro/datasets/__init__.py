"""Synthetic stand-ins for the paper's benchmark datasets.

The paper evaluates on public ANN-benchmark datasets (GloVe, Keyword-match,
Geo-radius, ArXiv-titles, deep-image) served through ``vector-db-benchmark``.
Those files are not available offline, so this package generates synthetic
datasets with the same *statistical character* — dimensionality regime,
cluster structure and inter-dimension correlation — scaled down so a single
configuration evaluation completes in milliseconds.  See DESIGN.md for the
substitution rationale.
"""

from repro.datasets.dataset import Dataset, DatasetSpec
from repro.datasets.ground_truth import brute_force_neighbors, recall_at_k
from repro.datasets.registry import DATASET_NAMES, dataset_spec, load_dataset
from repro.datasets.synthetic import (
    make_clustered_vectors,
    make_correlated_vectors,
    make_heavy_tailed_vectors,
)

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "DatasetSpec",
    "brute_force_neighbors",
    "dataset_spec",
    "load_dataset",
    "make_clustered_vectors",
    "make_correlated_vectors",
    "make_heavy_tailed_vectors",
    "recall_at_k",
]
