"""Dataset containers.

A :class:`Dataset` bundles the stored base vectors, the query vectors and the
exact ground-truth neighbours that recall is measured against.  A
:class:`DatasetSpec` is the lightweight description used by the registry to
generate a dataset lazily and deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset", "DatasetSpec"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a dataset: enough to regenerate it deterministically.

    Attributes
    ----------
    name:
        Registry name (for example ``"glove-small"``).
    num_vectors:
        Number of stored base vectors.
    num_queries:
        Number of query vectors.
    dimension:
        Vector dimensionality.
    metric:
        Distance metric: ``"angular"``, ``"l2"`` or ``"ip"``.
    top_k:
        Number of neighbours the ground truth records per query.
    generator:
        Name of the synthetic generator family used to produce the vectors.
    seed:
        Seed for the dataset's private random generator.
    difficulty:
        A qualitative scalar in ``[0, 1]`` describing how hard approximate
        search is on this dataset (larger is harder); used only to pick
        generator parameters.

    Examples
    --------
    >>> from repro import load_dataset
    >>> dataset = load_dataset("glove-small")
    >>> dataset.spec.name, dataset.spec.metric
    ('glove-small', 'angular')
    >>> dataset.vectors.shape[1] == dataset.spec.dimension
    True
    """

    name: str
    num_vectors: int
    num_queries: int
    dimension: int
    metric: str = "angular"
    top_k: int = 100
    generator: str = "clustered"
    seed: int = 0
    difficulty: float = 0.5

    def __post_init__(self) -> None:
        if self.metric not in ("angular", "l2", "ip"):
            raise ValueError(f"unsupported metric {self.metric!r}")
        if self.num_vectors <= 0 or self.num_queries <= 0 or self.dimension <= 0:
            raise ValueError("dataset sizes must be positive")
        if self.top_k <= 0 or self.top_k > self.num_vectors:
            raise ValueError("top_k must be in (0, num_vectors]")


@dataclass
class Dataset:
    """A fully materialized dataset: base vectors, queries and ground truth.

    ``attributes`` optionally carries scalar payload columns (one int value
    per base row) that hybrid filtered-search workloads predicate on; they
    are inserted into the collection alongside the vectors by the workload
    replayer.
    """

    spec: DatasetSpec
    vectors: np.ndarray
    queries: np.ndarray
    ground_truth: np.ndarray = field(repr=False)
    attributes: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.vectors = np.ascontiguousarray(self.vectors, dtype=np.float32)
        self.queries = np.ascontiguousarray(self.queries, dtype=np.float32)
        self.ground_truth = np.ascontiguousarray(self.ground_truth, dtype=np.int64)
        if self.vectors.ndim != 2 or self.queries.ndim != 2:
            raise ValueError("vectors and queries must be 2-D arrays")
        if self.vectors.shape[1] != self.queries.shape[1]:
            raise ValueError("vectors and queries must share a dimension")
        if self.ground_truth.shape[0] != self.queries.shape[0]:
            raise ValueError("ground truth must have one row per query")
        self.attributes = {
            str(name): np.ascontiguousarray(column, dtype=np.int64)
            for name, column in (self.attributes or {}).items()
        }
        for name, column in self.attributes.items():
            if column.shape != (self.vectors.shape[0],):
                raise ValueError(
                    f"attribute column {name!r} must hold one value per base vector"
                )

    @property
    def name(self) -> str:
        """Registry name of the dataset."""
        return self.spec.name

    @property
    def num_vectors(self) -> int:
        """Number of stored base vectors."""
        return self.vectors.shape[0]

    @property
    def num_queries(self) -> int:
        """Number of query vectors."""
        return self.queries.shape[0]

    @property
    def dimension(self) -> int:
        """Vector dimensionality."""
        return self.vectors.shape[1]

    @property
    def metric(self) -> str:
        """Distance metric name."""
        return self.spec.metric

    @property
    def top_k(self) -> int:
        """Number of ground-truth neighbours per query."""
        return self.ground_truth.shape[1]

    def subset(self, num_vectors: int, num_queries: int | None = None) -> "Dataset":
        """Return a smaller dataset using the first vectors/queries.

        Ground truth is recomputed over the restricted base set so recall
        stays exact.
        """
        from repro.datasets.ground_truth import brute_force_neighbors

        num_vectors = int(min(num_vectors, self.num_vectors))
        num_queries = int(min(num_queries or self.num_queries, self.num_queries))
        vectors = self.vectors[:num_vectors]
        queries = self.queries[:num_queries]
        top_k = min(self.top_k, num_vectors)
        ground_truth = brute_force_neighbors(vectors, queries, top_k, self.metric)
        spec = DatasetSpec(
            name=f"{self.spec.name}-subset",
            num_vectors=num_vectors,
            num_queries=num_queries,
            dimension=self.dimension,
            metric=self.metric,
            top_k=top_k,
            generator=self.spec.generator,
            seed=self.spec.seed,
            difficulty=self.spec.difficulty,
        )
        return Dataset(spec=spec, vectors=vectors, queries=queries, ground_truth=ground_truth)
