"""Exact nearest-neighbour computation and recall evaluation.

Ground truth is computed by brute force with the same distance kernels the
VDMS substrate uses, so recall numbers reported by the workload replayer are
exact, not estimated.
"""

from __future__ import annotations

import numpy as np

from repro.vdms.distance import pairwise_distances, top_k_select

__all__ = ["brute_force_neighbors", "masked_brute_force_neighbors", "recall_at_k"]


def brute_force_neighbors(
    vectors: np.ndarray,
    queries: np.ndarray,
    top_k: int,
    metric: str = "angular",
    *,
    batch_size: int = 256,
) -> np.ndarray:
    """Return the exact ``top_k`` neighbour ids for every query.

    Parameters
    ----------
    vectors:
        Base vectors, shape ``(n, d)``.
    queries:
        Query vectors, shape ``(q, d)``.
    top_k:
        Number of neighbours per query.
    metric:
        ``"angular"``, ``"l2"`` or ``"ip"``.
    batch_size:
        Number of queries processed per distance-matrix block, bounding peak
        memory at ``batch_size * n`` floats.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    queries = np.asarray(queries, dtype=np.float32)
    if top_k > vectors.shape[0]:
        raise ValueError("top_k cannot exceed the number of base vectors")
    result = np.empty((queries.shape[0], top_k), dtype=np.int64)
    for start in range(0, queries.shape[0], batch_size):
        block = queries[start : start + batch_size]
        distances = pairwise_distances(block, vectors, metric)
        # Lexicographic (distance, position) selection — the same tie-break
        # the serving stack uses, so duplicate vectors at the top-k boundary
        # yield the id the collection actually serves (recall of an exact
        # index stays exactly 1.0 even on degenerate corpora).
        positions, _ = top_k_select(distances, top_k)
        result[start : start + block.shape[0]] = positions
    return result


def masked_brute_force_neighbors(
    vectors: np.ndarray,
    queries: np.ndarray,
    top_k: int,
    metric: str = "angular",
    *,
    mask: np.ndarray,
    batch_size: int = 256,
) -> np.ndarray:
    """Exact ``top_k`` neighbours restricted to the rows ``mask`` allows.

    The filtered-search oracle: the scan runs over the allowed subset only
    and the returned positions refer to the *full* ``vectors`` array, so
    they compare directly against an attribute-filtered collection search.
    Rows are padded with ``-1`` when the mask allows fewer than ``top_k``
    rows — the same under-full contract the serving stack pins.

    Parameters
    ----------
    vectors / queries / top_k / metric / batch_size:
        As in :func:`brute_force_neighbors`.
    mask:
        Boolean allow-mask over the base rows (``True`` = eligible).
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    queries = np.asarray(queries, dtype=np.float32)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (vectors.shape[0],):
        raise ValueError("mask must have one entry per base vector")
    allowed = np.flatnonzero(mask)
    result = np.full((queries.shape[0], int(top_k)), -1, dtype=np.int64)
    if allowed.size == 0:
        return result
    keep = int(min(top_k, allowed.size))
    subset = brute_force_neighbors(
        vectors[allowed], queries, keep, metric, batch_size=batch_size
    )
    result[:, :keep] = allowed[subset]
    return result


def recall_at_k(retrieved: np.ndarray, ground_truth: np.ndarray, k: int | None = None) -> float:
    """Compute mean recall@k over a batch of queries.

    ``retrieved`` may contain ``-1`` padding for queries that returned fewer
    than ``k`` results; padding never matches a true neighbour.  The ground
    truth may itself be ``-1``-padded (a filter matching fewer than ``k``
    rows): padded truth entries are excluded from the denominator, so a
    correctly padded result still scores recall 1.0.

    Parameters
    ----------
    retrieved:
        Retrieved ids, shape ``(q, >=k)``.
    ground_truth:
        Exact neighbour ids, shape ``(q, >=k)``, ``-1``-padded when fewer
        than ``k`` eligible rows exist.
    k:
        Cut-off; defaults to the ground-truth width.
    """
    retrieved = np.asarray(retrieved)
    ground_truth = np.asarray(ground_truth)
    if retrieved.ndim != 2 or ground_truth.ndim != 2:
        raise ValueError("retrieved and ground_truth must be 2-D")
    if retrieved.shape[0] != ground_truth.shape[0]:
        raise ValueError("retrieved and ground_truth must have the same number of queries")
    if k is None:
        k = ground_truth.shape[1]
    k = int(min(k, ground_truth.shape[1]))
    if k <= 0:
        raise ValueError("k must be positive")
    truth = ground_truth[:, :k]
    hits = 0
    eligible = 0
    for row_retrieved, row_truth in zip(retrieved[:, :k], truth):
        true_ids = set(int(i) for i in row_truth if i >= 0)
        eligible += len(true_ids)
        hits += len(set(int(i) for i in row_retrieved if i >= 0) & true_ids)
    if eligible == 0:
        # No query had any eligible neighbour (a filter matched nothing):
        # an empty, fully padded result is by definition complete.
        return 1.0
    return hits / eligible
