"""Synthetic vector generators.

Three generator families cover the statistical regimes of the paper's
datasets:

``make_clustered_vectors``
    Gaussian mixture with controllable cluster tightness.  Embedding-style
    datasets (GloVe, ArXiv-titles, deep-image) are clustered: approximate
    indexes such as IVF and HNSW exploit the cluster structure, so recall is
    comparatively easy to achieve.

``make_correlated_vectors``
    Vectors with a controllable inter-dimension correlation.  The paper's
    Keyword-match dataset has low correlation between dimensions, which makes
    quantization-based search harder (larger ``nprobe`` needed).

``make_heavy_tailed_vectors``
    High-dimensional, heavy-tailed vectors standing in for the Geo-radius
    dataset (dimension 2048 in the paper), where good configurations differ
    the most from the defaults.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "make_clustered_vectors",
    "make_correlated_vectors",
    "make_heavy_tailed_vectors",
]


def _split_queries(
    vectors: np.ndarray, num_queries: int, rng: np.random.Generator, jitter: float
) -> tuple[np.ndarray, np.ndarray]:
    """Derive queries by perturbing random base vectors.

    Queries drawn near stored vectors reflect how embedding workloads behave
    (queries come from the same distribution as the corpus) and guarantee that
    similarity search is meaningful rather than random.
    """
    picks = rng.integers(0, vectors.shape[0], size=num_queries)
    noise = rng.normal(scale=jitter, size=(num_queries, vectors.shape[1]))
    queries = vectors[picks] + noise.astype(np.float32)
    return vectors, queries.astype(np.float32)


def make_clustered_vectors(
    num_vectors: int,
    num_queries: int,
    dimension: int,
    *,
    num_clusters: int = 32,
    cluster_std: float = 0.18,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a Gaussian-mixture corpus and matching queries.

    Parameters
    ----------
    num_vectors, num_queries, dimension:
        Dataset sizes.
    num_clusters:
        Number of mixture components.
    cluster_std:
        Within-cluster standard deviation relative to the unit-norm centres;
        smaller values produce tighter, easier clusters.
    seed:
        Random seed.
    """
    rng = np.random.default_rng(seed)
    num_clusters = max(1, min(num_clusters, num_vectors))
    centers = rng.normal(size=(num_clusters, dimension))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True) + 1e-12
    assignment = rng.integers(0, num_clusters, size=num_vectors)
    vectors = centers[assignment] + rng.normal(scale=cluster_std, size=(num_vectors, dimension))
    vectors = vectors.astype(np.float32)
    return _split_queries(vectors, num_queries, rng, jitter=cluster_std * 0.5)


def make_correlated_vectors(
    num_vectors: int,
    num_queries: int,
    dimension: int,
    *,
    correlation: float = 0.1,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate vectors with a controllable inter-dimension correlation.

    ``correlation`` near 0 yields nearly isotropic data (hard for
    quantization-based indexes); near 1 yields strongly low-rank data (easy).
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    latent_dim = max(1, int(round(dimension * (1.0 - 0.9 * correlation))))
    mixing = rng.normal(size=(latent_dim, dimension))
    latent = rng.normal(size=(num_vectors, latent_dim))
    vectors = latent @ mixing / np.sqrt(latent_dim)
    vectors += rng.normal(scale=0.05, size=vectors.shape)
    vectors = vectors.astype(np.float32)
    return _split_queries(vectors, num_queries, rng, jitter=0.1)


def make_heavy_tailed_vectors(
    num_vectors: int,
    num_queries: int,
    dimension: int,
    *,
    tail_index: float = 3.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate high-dimensional, heavy-tailed vectors (Geo-radius stand-in).

    Component magnitudes follow a Student-t distribution with ``tail_index``
    degrees of freedom, producing the long-tailed norms typical of
    radius-style geometric features.
    """
    if tail_index <= 2.0:
        raise ValueError("tail_index must be > 2 so the variance is finite")
    rng = np.random.default_rng(seed)
    vectors = rng.standard_t(df=tail_index, size=(num_vectors, dimension))
    scales = 1.0 + rng.pareto(a=tail_index, size=(num_vectors, 1))
    vectors = (vectors * scales).astype(np.float32)
    return _split_queries(vectors, num_queries, rng, jitter=0.5)
