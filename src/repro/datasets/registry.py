"""Named dataset registry.

Each paper dataset has a registry entry describing the synthetic stand-in.
``load_dataset`` materializes it deterministically (base vectors, queries and
exact ground truth) and caches the result in-process so repeated loads are
free.

Default sizes are deliberately small (a few thousand vectors) so that a full
tuning run of 200 iterations completes in seconds.  ``scale`` lets the
experiment harness grow a dataset — the ``deep-image`` entry, for example, is
10x the GloVe entry exactly as in the paper's scalability study.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.dataset import Dataset, DatasetSpec
from repro.datasets.ground_truth import brute_force_neighbors
from repro.datasets.synthetic import (
    make_clustered_vectors,
    make_correlated_vectors,
    make_heavy_tailed_vectors,
)

__all__ = ["DATASET_NAMES", "dataset_spec", "load_dataset"]

#: Registry of dataset specifications keyed by name.  Sizes are scaled-down
#: stand-ins for the paper's datasets (Table III and Section V-E).
_REGISTRY: dict[str, DatasetSpec] = {
    # GloVe: 1.18M x 100, angular.  Stand-in: clustered embeddings.
    "glove-small": DatasetSpec(
        name="glove-small",
        num_vectors=4_000,
        num_queries=64,
        dimension=32,
        metric="angular",
        top_k=10,
        generator="clustered",
        seed=11,
        difficulty=0.35,
    ),
    # Keyword-match: 1M x 100, angular, low inter-dimension correlation.
    "keyword-match-small": DatasetSpec(
        name="keyword-match-small",
        num_vectors=4_000,
        num_queries=64,
        dimension=32,
        metric="angular",
        top_k=10,
        generator="correlated",
        seed=23,
        difficulty=0.6,
    ),
    # Geo-radius: 100K x 2048, angular.  Stand-in: high-dimensional heavy tails.
    "geo-radius-small": DatasetSpec(
        name="geo-radius-small",
        num_vectors=2_000,
        num_queries=48,
        dimension=96,
        metric="angular",
        top_k=10,
        generator="heavy_tailed",
        seed=37,
        difficulty=0.85,
    ),
    # ArXiv-titles (Table V): clustered text embeddings.
    "arxiv-titles-small": DatasetSpec(
        name="arxiv-titles-small",
        num_vectors=3_000,
        num_queries=64,
        dimension=48,
        metric="angular",
        top_k=10,
        generator="clustered",
        seed=41,
        difficulty=0.5,
    ),
    # deep-image: 10x GloVe (scalability study, Section V-E).
    "deep-image-small": DatasetSpec(
        name="deep-image-small",
        num_vectors=40_000,
        num_queries=64,
        dimension=32,
        metric="angular",
        top_k=10,
        generator="clustered",
        seed=53,
        difficulty=0.45,
    ),
}

#: Public tuple of registered dataset names.
DATASET_NAMES: tuple[str, ...] = tuple(_REGISTRY)

#: Map from the paper's dataset names to registry names.
PAPER_NAME_ALIASES: dict[str, str] = {
    "glove": "glove-small",
    "keyword-match": "keyword-match-small",
    "geo-radius": "geo-radius-small",
    "arxiv-titles": "arxiv-titles-small",
    "deep-image": "deep-image-small",
}


def dataset_spec(name: str) -> DatasetSpec:
    """Return the registry specification for ``name`` (aliases accepted)."""
    key = PAPER_NAME_ALIASES.get(name.lower(), name.lower())
    if key not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def _generate(spec: DatasetSpec) -> Dataset:
    """Materialize a dataset from its specification."""
    if spec.generator == "clustered":
        clusters = max(8, spec.num_vectors // 120)
        std = 0.12 + 0.2 * spec.difficulty
        vectors, queries = make_clustered_vectors(
            spec.num_vectors,
            spec.num_queries,
            spec.dimension,
            num_clusters=clusters,
            cluster_std=std,
            seed=spec.seed,
        )
    elif spec.generator == "correlated":
        vectors, queries = make_correlated_vectors(
            spec.num_vectors,
            spec.num_queries,
            spec.dimension,
            correlation=max(0.0, 1.0 - spec.difficulty),
            seed=spec.seed,
        )
    elif spec.generator == "heavy_tailed":
        vectors, queries = make_heavy_tailed_vectors(
            spec.num_vectors,
            spec.num_queries,
            spec.dimension,
            tail_index=2.5 + (1.0 - spec.difficulty) * 3.0,
            seed=spec.seed,
        )
    else:
        raise ValueError(f"unknown generator {spec.generator!r}")
    ground_truth = brute_force_neighbors(vectors, queries, spec.top_k, spec.metric)
    return Dataset(spec=spec, vectors=vectors, queries=queries, ground_truth=ground_truth)


@lru_cache(maxsize=16)
def _load_cached(name: str, scale: float) -> Dataset:
    base = dataset_spec(name)
    if scale == 1.0:
        return _generate(base)
    spec = DatasetSpec(
        name=f"{base.name}-x{scale:g}",
        num_vectors=max(base.top_k, int(base.num_vectors * scale)),
        num_queries=max(8, int(base.num_queries * min(4.0, max(0.25, scale)))),
        dimension=base.dimension,
        metric=base.metric,
        top_k=base.top_k,
        generator=base.generator,
        seed=base.seed,
        difficulty=base.difficulty,
    )
    return _generate(spec)


def load_dataset(name: str, *, scale: float = 1.0) -> Dataset:
    """Load (generate) a dataset by name.

    Parameters
    ----------
    name:
        Registry name or paper alias (``"glove"``, ``"keyword-match"``, ...).
    scale:
        Multiplier on the number of base vectors; queries scale with a capped
        factor.  Results are cached per ``(name, scale)``.

    Examples
    --------
    >>> from repro import load_dataset
    >>> dataset = load_dataset("glove-small")
    >>> dataset.queries.shape[0] > 0
    True
    >>> load_dataset("glove-small", scale=2.0).vectors.shape[0] > dataset.vectors.shape[0]
    True
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return _load_cached(name, float(scale))
