"""Concurrent evaluation of configuration batches on a worker pool.

:class:`BatchEvaluator` is the evaluation half of the batch-parallel tuning
engine: the tuner suggests a joint q-EHVI batch
(:meth:`repro.core.tuner.VDTuner.suggest_batch`) and the evaluator replays
the q configurations concurrently, one per worker.  Design points:

* **Per-worker server.**  Every worker owns a private
  :class:`~repro.vdms.server.VectorDBServer` (inside its
  :class:`~repro.workloads.replay.WorkloadReplayer`), so concurrent replays
  never share mutable index state.  The dataset and workload are shipped to
  each worker exactly once (pool initializer) and treated as read-only.

* **Deterministic results.**  Results are returned in submission order and
  every task carries a seed derived from ``(base seed, task index)``, never
  from worker identity or scheduling — so a batch evaluated on 1 worker is
  bit-identical to the same batch on N workers.  (The simulated replayer is
  itself deterministic; the per-task seed future-proofs stochastic
  replayers.)

* **Failure isolation.**  A worker exception is converted into a failed
  :class:`~repro.workloads.replay.EvaluationResult` for that configuration
  only; the rest of the batch and the pool survive.  A broken process pool
  degrades to in-process evaluation for the affected batch.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Any, Mapping, Sequence

from repro.datasets.dataset import Dataset
from repro.workloads.replay import EvaluationResult, WorkloadReplayer
from repro.workloads.workload import SearchWorkload

__all__ = ["BatchEvaluator", "WorkerFailure"]

#: Supported pool backends.
_BACKENDS = ("serial", "thread", "process")


class WorkerFailure(Exception):
    """Raised internally when a worker cannot produce a result.

    Stored (not raised) by :meth:`BatchEvaluator.evaluate_many`, which turns
    it into a failed :class:`~repro.workloads.replay.EvaluationResult` so one
    bad configuration never kills a batch.
    """


def _failed_result(configuration: Mapping[str, Any], message: str) -> EvaluationResult:
    return EvaluationResult(
        qps=0.0,
        recall=0.0,
        memory_gib=0.0,
        latency_ms=float("inf"),
        build_seconds=0.0,
        replay_seconds=0.0,
        failed=True,
        configuration={**dict(configuration), "worker_error": message},
        breakdown={"worker_error": 1.0},
    )


# -- process-pool worker protocol -------------------------------------------------------
#
# The replayer is built once per worker process by the initializer and reused
# for every task, so the dataset crosses the process boundary exactly once.

_WORKER_REPLAYER: WorkloadReplayer | None = None


def _process_worker_init(
    dataset: Dataset,
    workload: SearchWorkload,
    use_query_scheduler: bool = True,
    mutations=None,
    row_ids=None,
) -> None:
    global _WORKER_REPLAYER
    _WORKER_REPLAYER = WorkloadReplayer(
        dataset,
        workload,
        use_query_scheduler=use_query_scheduler,
        mutations=mutations,
        row_ids=row_ids,
    )


def _process_worker_replay(task: tuple[int, dict[str, Any], int]):
    index, values, _task_seed = task
    try:
        return index, _WORKER_REPLAYER.replay(values)
    except Exception as error:  # noqa: BLE001 - isolation boundary
        return index, WorkerFailure(f"{type(error).__name__}: {error}")


class BatchEvaluator:
    """Evaluates batches of configurations concurrently on a worker pool.

    Parameters
    ----------
    dataset:
        The (read-only) dataset every worker replays against.
    workload:
        The search workload; defaults to the dataset's standard workload.
    num_workers:
        Pool size.  ``1`` short-circuits to in-process evaluation.
    backend:
        ``"process"`` (default; real CPU parallelism), ``"thread"`` (lower
        startup cost, shares the interpreter) or ``"serial"`` (no pool at
        all — the reference backend the tests compare against).
    seed:
        Base seed for the per-task seed derivation.

    Examples
    --------
    >>> from repro import BatchEvaluator, load_dataset
    >>> evaluator = BatchEvaluator(load_dataset("glove-small"), num_workers=4)
    >>> # results arrive in submission order, failures isolated per task:
    >>> # results = evaluator.evaluate_many([cfg_a, cfg_b, cfg_c, cfg_d])
    >>> evaluator.close()
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        workload: SearchWorkload | None = None,
        num_workers: int = 1,
        backend: str = "process",
        seed: int = 0,
        use_query_scheduler: bool = True,
        mutations=None,
        row_ids=None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        self.dataset = dataset
        self.workload = workload or SearchWorkload.from_dataset(dataset)
        self.mutations = mutations
        self.row_ids = row_ids
        # The serial backend runs one replay at a time, so it is also a
        # single worker as far as the makespan clock accounting goes.
        self.num_workers = 1 if backend == "serial" else max(1, int(num_workers))
        self.backend = backend if self.num_workers > 1 else "serial"
        self.seed = int(seed)
        self.use_query_scheduler = bool(use_query_scheduler)
        self._pool: concurrent.futures.Executor | None = None
        self._serial_replayer: WorkloadReplayer | None = None
        self._thread_local = threading.local()
        self._tasks_dispatched = 0

    @classmethod
    def from_environment(
        cls,
        environment,
        *,
        num_workers: int = 1,
        backend: str = "process",
    ) -> "BatchEvaluator":
        """Build an evaluator sharing an environment's dataset and workload."""
        return cls(
            environment.dataset,
            workload=environment.workload,
            num_workers=num_workers,
            backend=backend,
            use_query_scheduler=getattr(environment, "use_query_scheduler", True),
            mutations=getattr(environment, "mutations", None),
            row_ids=getattr(environment, "row_ids", None),
        )

    # -- lifecycle ---------------------------------------------------------------------

    def _ensure_pool(self) -> concurrent.futures.Executor | None:
        if self.backend == "serial":
            return None
        if self._pool is None:
            if self.backend == "process":
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.num_workers,
                    initializer=_process_worker_init,
                    initargs=(
                        self.dataset,
                        self.workload,
                        self.use_query_scheduler,
                        self.mutations,
                        self.row_ids,
                    ),
                )
            else:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="repro-eval",
                )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def update_workload(
        self,
        dataset: Dataset,
        workload: SearchWorkload | None = None,
        *,
        mutations=None,
        row_ids=None,
    ) -> None:
        """Point the pool at a new dataset/workload (online drift support).

        Workers hold per-worker replayers initialized with the dataset they
        were spawned with, so a workload switch shuts the pool down; the next
        batch lazily re-initializes workers against the new state (including
        any churn :class:`~repro.workloads.replay.MutationPlan`).  No-op if
        the dataset, workload and mutation plan are already current.
        """
        workload = workload or SearchWorkload.from_dataset(dataset)
        if (
            dataset is self.dataset
            and workload is self.workload
            and mutations is self.mutations
        ):
            return
        self.close()
        self.dataset = dataset
        self.workload = workload
        self.mutations = mutations
        self.row_ids = row_ids
        self._serial_replayer = None
        self._thread_local = threading.local()

    def sync_with(self, environment) -> None:
        """Adopt an environment's current dataset/workload if they changed.

        Called by :class:`repro.workloads.dynamic.DynamicTuningEnvironment`
        before every pooled batch, so one evaluator can serve a whole online
        tuning run across drift events (mutation plans included).
        """
        self.update_workload(
            environment.dataset,
            environment.workload,
            mutations=getattr(environment, "mutations", None),
            row_ids=getattr(environment, "row_ids", None),
        )

    def __enter__(self) -> "BatchEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation ---------------------------------------------------------------------

    def _make_replayer(self) -> WorkloadReplayer:
        return WorkloadReplayer(
            self.dataset,
            self.workload,
            use_query_scheduler=self.use_query_scheduler,
            mutations=self.mutations,
            row_ids=self.row_ids,
        )

    def _in_process_replay(self, values: dict[str, Any]) -> EvaluationResult:
        if self._serial_replayer is None:
            self._serial_replayer = self._make_replayer()
        return self._serial_replayer.replay(values)

    def _thread_replay(self, task: tuple[int, dict[str, Any], int]):
        index, values, _task_seed = task
        replayer = getattr(self._thread_local, "replayer", None)
        if replayer is None:
            replayer = self._make_replayer()
            self._thread_local.replayer = replayer
        try:
            return index, replayer.replay(values)
        except Exception as error:  # noqa: BLE001 - isolation boundary
            return index, WorkerFailure(f"{type(error).__name__}: {error}")

    def evaluate_many(
        self, configurations: Sequence[Mapping[str, Any]]
    ) -> list[EvaluationResult]:
        """Replay every configuration and return results in submission order.

        Workers run concurrently (per the backend); ordering, seeding and
        failure handling follow the determinism guarantees in the module
        docstring.  Each worker exception yields a failed result for that
        slot instead of propagating.
        """
        tasks = []
        for offset, configuration in enumerate(configurations):
            task_seed = self.seed + self._tasks_dispatched + offset
            tasks.append((offset, dict(configuration), task_seed))
        self._tasks_dispatched += len(tasks)
        if not tasks:
            return []

        outcomes: list[EvaluationResult | WorkerFailure | None] = [None] * len(tasks)
        pool = None
        if len(tasks) > 1:
            pool = self._ensure_pool()
        if pool is None:
            for index, values, _task_seed in tasks:
                try:
                    outcomes[index] = self._in_process_replay(values)
                except Exception as error:  # noqa: BLE001 - isolation boundary
                    outcomes[index] = WorkerFailure(f"{type(error).__name__}: {error}")
        else:
            worker = (
                _process_worker_replay if self.backend == "process" else self._thread_replay
            )
            try:
                for index, outcome in pool.map(worker, tasks):
                    outcomes[index] = outcome
            except concurrent.futures.process.BrokenProcessPool:
                # The pool died (e.g. a worker was OOM-killed): recover by
                # evaluating the batch in-process and rebuild the pool lazily.
                self._pool = None
                for index, values, _task_seed in tasks:
                    try:
                        outcomes[index] = self._in_process_replay(values)
                    except Exception as error:  # noqa: BLE001 - isolation boundary
                        outcomes[index] = WorkerFailure(f"{type(error).__name__}: {error}")

        results: list[EvaluationResult] = []
        for (index, values, _task_seed), outcome in zip(tasks, outcomes):
            if isinstance(outcome, WorkerFailure):
                results.append(_failed_result(values, str(outcome)))
            else:
                results.append(outcome)
        return results
