"""Batch-parallel evaluation subsystem.

The tuners produce joint q-EHVI batches (``suggest_batch``); this package
evaluates them concurrently: :class:`BatchEvaluator` runs one workload replay
per worker (process or thread pool, per-worker server, shared read-only
dataset, deterministic ordering and seeding, per-task failure isolation).
:meth:`repro.workloads.environment.VDMSTuningEnvironment.evaluate_batch`
plugs an evaluator into the tuning loop, and the ``--batch-size``/``--workers``
CLI flags wire it up end to end.  See ``docs/architecture.md`` for the design
and the determinism guarantees.
"""

from repro.parallel.evaluator import BatchEvaluator, WorkerFailure

__all__ = ["BatchEvaluator", "WorkerFailure"]
