"""Motivation experiments (Figures 1-3 of the paper).

These are not tuning runs: they sweep configurations directly against the
environment to reproduce the observations that motivate VDTuner — parameter
interdependence, the index-type/system-config interaction, and the
conflicting-objective structure of the space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import build_milvus_space, default_configuration
from repro.config.milvus_space import INDEX_TYPES
from repro.experiments.settings import ExperimentScale, current_scale
from repro.workloads.environment import VDMSTuningEnvironment

__all__ = [
    "ParameterGridResult",
    "figure1_parameter_grid",
    "figure2_index_vs_system",
    "figure3_conflicting_objectives",
    "figure3_optimization_curves",
]


@dataclass
class ParameterGridResult:
    """Grid sweep of two system parameters (Figure 1).

    ``qps`` and ``recall`` have shape ``(len(x_values), len(y_values))``.
    """

    x_name: str
    y_name: str
    x_values: list
    y_values: list
    qps: np.ndarray
    recall: np.ndarray


def figure1_parameter_grid(
    dataset_name: str = "glove-small",
    *,
    x_name: str = "segment_max_size",
    y_name: str = "segment_seal_proportion",
    index_type: str = "IVF_FLAT",
    scale: ExperimentScale | None = None,
) -> ParameterGridResult:
    """Sweep two system parameters with everything else at defaults."""
    scale = scale or current_scale()
    space = build_milvus_space()
    environment = VDMSTuningEnvironment(dataset_name, space=space, seed=scale.seed)
    x_values = space[x_name].grid(scale.grid_resolution)
    y_values = space[y_name].grid(scale.grid_resolution)
    qps = np.zeros((len(x_values), len(y_values)))
    recall = np.zeros_like(qps)
    for i, x_value in enumerate(x_values):
        for j, y_value in enumerate(y_values):
            configuration = default_configuration(
                space, index_type=index_type, overrides={x_name: x_value, y_name: y_value}
            )
            result = environment.evaluate(configuration)
            qps[i, j] = result.qps
            recall[i, j] = result.recall
    return ParameterGridResult(
        x_name=x_name, y_name=y_name, x_values=x_values, y_values=y_values, qps=qps, recall=recall
    )


def figure2_index_vs_system(
    dataset_name: str = "glove-small",
    *,
    index_types: tuple[str, ...] = ("FLAT", "HNSW", "IVF_FLAT"),
    scale: ExperimentScale | None = None,
) -> dict[str, dict[str, float]]:
    """Search speed of several index types under four different system configs.

    Returns ``{system_config_label: {index_type: qps}}``; the best index type
    per system configuration is the argmax of the inner dict.
    """
    scale = scale or current_scale()
    space = build_milvus_space()
    environment = VDMSTuningEnvironment(dataset_name, space=space, seed=scale.seed)
    system_configs = {
        "system-config-1": {"segment_max_size": 1500, "segment_seal_proportion": 0.6, "graceful_time": 6000},
        "system-config-2": {"segment_max_size": 900, "segment_seal_proportion": 0.5, "graceful_time": 5000},
        "system-config-3": {"segment_max_size": 200, "segment_seal_proportion": 0.25, "graceful_time": 4000},
        "system-config-4": {"segment_max_size": 80, "segment_seal_proportion": 0.1, "graceful_time": 2500},
    }
    results: dict[str, dict[str, float]] = {}
    for label, overrides in system_configs.items():
        per_index: dict[str, float] = {}
        for index_type in index_types:
            configuration = default_configuration(space, index_type=index_type, overrides=overrides)
            per_index[index_type] = environment.evaluate(configuration).qps
        results[label] = per_index
    return results


def figure3_conflicting_objectives(
    dataset_names: tuple[str, ...] = ("glove-small", "geo-radius-small"),
    *,
    scale: ExperimentScale | None = None,
) -> dict[str, dict[str, tuple[float, float]]]:
    """Per-index-type (normalized speed, recall) with default parameters (Figure 3a/b)."""
    scale = scale or current_scale()
    results: dict[str, dict[str, tuple[float, float]]] = {}
    for dataset_name in dataset_names:
        space = build_milvus_space()
        environment = VDMSTuningEnvironment(dataset_name, space=space, seed=scale.seed)
        per_index: dict[str, tuple[float, float]] = {}
        for index_type in INDEX_TYPES:
            configuration = default_configuration(space, index_type=index_type)
            result = environment.evaluate(configuration)
            per_index[index_type] = (result.qps, result.recall)
        max_qps = max(v[0] for v in per_index.values()) or 1.0
        results[dataset_name] = {
            index_type: (qps / max_qps, recall) for index_type, (qps, recall) in per_index.items()
        }
    return results


def figure3_optimization_curves(
    dataset_name: str = "glove-small",
    *,
    num_samples: int = 20,
    index_types: tuple[str, ...] = ("IVF_FLAT", "HNSW", "SCANN", "IVF_SQ8"),
    speed_weight: float = 0.5,
    scale: ExperimentScale | None = None,
) -> dict[str, np.ndarray]:
    """Best weighted performance vs number of uniform samples, per index type (Figure 3c)."""
    scale = scale or current_scale()
    space = build_milvus_space()
    environment = VDMSTuningEnvironment(dataset_name, space=space, seed=scale.seed)
    rng = np.random.default_rng(scale.seed)
    curves: dict[str, np.ndarray] = {}
    raw: dict[str, list[tuple[float, float]]] = {}
    for index_type in index_types:
        observations: list[tuple[float, float]] = []
        for _ in range(num_samples):
            values = space.sample_configuration(rng).to_dict()
            values["index_type"] = index_type
            result = environment.evaluate(space.configuration(values))
            observations.append((result.qps, result.recall))
        raw[index_type] = observations
    max_qps = max(max(q for q, _ in obs) for obs in raw.values()) or 1.0
    max_recall = max(max(r for _, r in obs) for obs in raw.values()) or 1.0
    for index_type, observations in raw.items():
        weighted = [
            speed_weight * q / max_qps + (1.0 - speed_weight) * r / max_recall
            for q, r in observations
        ]
        curves[index_type] = np.maximum.accumulate(np.array(weighted))
    return curves
