"""User-preference experiment (Figure 12)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.curves import best_so_far_curve, iterations_to_reach
from repro.core.preference import PreferenceStageResult, run_preference_sequence
from repro.experiments.settings import ExperimentScale, current_scale
from repro.workloads.environment import VDMSTuningEnvironment

__all__ = ["figure12_user_preference", "PreferenceComparison"]


@dataclass
class PreferenceComparison:
    """Figure 12: three VDTuner variants under a sequence of recall preferences.

    Attributes
    ----------
    recall_constraints:
        The sequence of preferences (the paper uses 0.85 then 0.9).
    stage_results:
        Mode name → list of per-stage results.
    best_speeds:
        Mode name → list of best feasible speeds per stage.
    samples_to_match_plain:
        Mode name → list of iterations needed per stage to reach the best
        feasible speed found by the "plain" variant (the efficiency claim of
        the paper: the constraint model and bootstrapping need fewer samples).
    """

    recall_constraints: list[float]
    stage_results: dict[str, list[PreferenceStageResult]]
    best_speeds: dict[str, list[float]]
    samples_to_match_plain: dict[str, list[int | None]]


def figure12_user_preference(
    dataset_name: str = "glove-small",
    *,
    recall_constraints: tuple[float, ...] = (0.85, 0.9),
    scale: ExperimentScale | None = None,
) -> PreferenceComparison:
    """Run the three preference-handling variants of Section V-E."""
    scale = scale or current_scale()
    iterations = scale.preference_iterations

    def make_environment() -> VDMSTuningEnvironment:
        return VDMSTuningEnvironment(dataset_name, seed=scale.seed)

    stage_results: dict[str, list[PreferenceStageResult]] = {}
    for mode in ("plain", "constraint", "bootstrap"):
        stage_results[mode] = run_preference_sequence(
            make_environment,
            list(recall_constraints),
            mode=mode,
            iterations_per_stage=iterations,
            settings=scale.vdtuner_settings(num_iterations=iterations),
        )

    best_speeds: dict[str, list[float]] = {}
    for mode, stages in stage_results.items():
        best_speeds[mode] = [
            float(best_so_far_curve(stage.report.history, recall_floor=stage.recall_constraint)[-1])
            for stage in stages
        ]

    samples_to_match: dict[str, list[int | None]] = {}
    for mode, stages in stage_results.items():
        per_stage: list[int | None] = []
        for position, stage in enumerate(stages):
            target = best_speeds["plain"][position]
            per_stage.append(
                iterations_to_reach(
                    stage.report.history, target, recall_floor=stage.recall_constraint
                )
            )
        samples_to_match[mode] = per_stage

    return PreferenceComparison(
        recall_constraints=list(recall_constraints),
        stage_results=stage_results,
        best_speeds=best_speeds,
        samples_to_match_plain=samples_to_match,
    )
