"""Ablation experiments (Figures 8-11 and the holistic-vs-individual study)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tradeoff import DEFAULT_SACRIFICES, speed_vs_sacrifice_curve
from repro.bo.pareto import pareto_ranks
from repro.config import build_milvus_space
from repro.config.milvus_space import INDEX_TYPES
from repro.core.objectives import ObjectiveSpec
from repro.core.tuner import TuningReport, VDTuner
from repro.experiments.settings import ExperimentScale, current_scale
from repro.workloads.environment import VDMSTuningEnvironment

__all__ = [
    "figure8_ablation",
    "figure9_score_dynamics",
    "figure10_sampling_quality",
    "figure11_parameter_convergence",
    "holistic_vs_individual",
    "AblationResult",
    "SamplingQualityResult",
]


def _run_variant(
    dataset_name: str,
    scale: ExperimentScale,
    *,
    use_successive_abandon: bool = True,
    use_polling_surrogate: bool = True,
    iterations: int | None = None,
    seed: int | None = None,
) -> TuningReport:
    settings = scale.vdtuner_settings(
        num_iterations=int(iterations or scale.ablation_iterations),
        use_successive_abandon=use_successive_abandon,
        use_polling_surrogate=use_polling_surrogate,
        seed=scale.seed if seed is None else seed,
    )
    environment = VDMSTuningEnvironment(dataset_name, seed=settings.seed)
    tuner = VDTuner(environment, settings=settings)
    return tuner.run()


@dataclass
class AblationResult:
    """Speed-vs-sacrifice curves of a component ablation (Figure 8a or 8b)."""

    dataset_name: str
    sacrifices: tuple[float, ...]
    variant_curves: dict[str, dict[float, float]]
    reports: dict[str, TuningReport]


def figure8_ablation(
    dataset_name: str = "glove-small",
    *,
    component: str = "budget_allocation",
    sacrifices: tuple[float, ...] = DEFAULT_SACRIFICES,
    scale: ExperimentScale | None = None,
) -> AblationResult:
    """Ablate one VDTuner component.

    ``component`` selects the ablation: ``"budget_allocation"`` compares the
    successive-abandon strategy against plain round robin (Figure 8a);
    ``"surrogate"`` compares the polling surrogate against the native GP
    surrogate (Figure 8b).
    """
    scale = scale or current_scale()
    if component == "budget_allocation":
        variants = {
            "successive_abandon": dict(use_successive_abandon=True),
            "round_robin": dict(use_successive_abandon=False),
        }
    elif component == "surrogate":
        variants = {
            "polling_surrogate": dict(use_polling_surrogate=True),
            "native_surrogate": dict(use_polling_surrogate=False),
        }
    else:
        raise ValueError("component must be 'budget_allocation' or 'surrogate'")
    reports = {
        name: _run_variant(dataset_name, scale, **overrides) for name, overrides in variants.items()
    }
    curves = {name: speed_vs_sacrifice_curve(r.history, sacrifices) for name, r in reports.items()}
    return AblationResult(
        dataset_name=dataset_name, sacrifices=sacrifices, variant_curves=curves, reports=reports
    )


def figure9_score_dynamics(
    dataset_name: str = "glove-small",
    *,
    scale: ExperimentScale | None = None,
    report: TuningReport | None = None,
) -> list[dict[str, float]]:
    """Per-iteration index-type score *weights* (Figure 9).

    Each entry maps index type to its share of the total score at that
    iteration (0 for abandoned index types), which is exactly what the
    paper's stacked-weight plot shows.
    """
    scale = scale or current_scale()
    if report is None:
        report = _run_variant(dataset_name, scale)
    weights: list[dict[str, float]] = []
    for snapshot in report.score_trace:
        shifted = {name: max(0.0, value) for name, value in snapshot.items()}
        total = sum(shifted.values())
        if total <= 0:
            uniform = 1.0 / max(1, len(shifted))
            weights.append({name: uniform for name in shifted})
        else:
            weights.append({name: value / total for name, value in shifted.items()})
    return weights


@dataclass
class SamplingQualityResult:
    """Sampled configurations of the surrogate ablation (Figure 10)."""

    dataset_name: str
    samples: dict[str, list[dict]]


def figure10_sampling_quality(
    dataset_name: str = "glove-small",
    *,
    scale: ExperimentScale | None = None,
    reports: dict[str, TuningReport] | None = None,
) -> SamplingQualityResult:
    """Every sampled configuration with its Pareto rank, per surrogate variant."""
    scale = scale or current_scale()
    if reports is None:
        reports = {
            "polling_surrogate": _run_variant(dataset_name, scale, use_polling_surrogate=True),
            "native_surrogate": _run_variant(dataset_name, scale, use_polling_surrogate=False),
        }
    samples: dict[str, list[dict]] = {}
    for name, report in reports.items():
        observations = report.history.successful()
        if not observations:
            samples[name] = []
            continue
        values = np.array([[o.speed, o.recall] for o in observations])
        ranks = pareto_ranks(values)
        samples[name] = [
            {
                "index_type": o.index_type,
                "qps": float(o.speed),
                "recall": float(o.recall),
                "pareto_rank": int(rank),
            }
            for o, rank in zip(observations, ranks)
        ]
    return SamplingQualityResult(dataset_name=dataset_name, samples=samples)


def figure11_parameter_convergence(
    dataset_name: str = "geo-radius-small",
    *,
    parameters: tuple[str, ...] = ("nlist", "nprobe", "segment_seal_proportion", "graceful_time"),
    scale: ExperimentScale | None = None,
    report: TuningReport | None = None,
) -> dict[str, np.ndarray]:
    """Normalized per-iteration values of selected parameters (Figure 11)."""
    scale = scale or current_scale()
    if report is None:
        report = _run_variant(dataset_name, scale)
    space = build_milvus_space()
    traces: dict[str, np.ndarray] = {}
    for name in parameters:
        parameter = space[name]
        values = [parameter.to_unit(o.configuration[name]) for o in report.history]
        traces[name] = np.array(values, dtype=float)
    return traces


def holistic_vs_individual(
    dataset_name: str = "glove-small",
    *,
    scale: ExperimentScale | None = None,
    iterations: int | None = None,
) -> dict[str, dict]:
    """Compare the holistic model against tuning each index type individually.

    Section V-D of the paper: the individual approach spends the same total
    budget but splits it evenly across per-index-type tuners and then keeps
    the best index type.  The comparison reports the selected index type and
    best balanced configuration of both approaches.
    """
    scale = scale or current_scale()
    total_budget = int(iterations or scale.ablation_iterations)

    holistic_report = _run_variant(dataset_name, scale, iterations=total_budget)
    holistic_best = holistic_report.best_observation(recall_floor=0.85) or holistic_report.best_observation()

    per_index_budget = max(3, total_budget // len(INDEX_TYPES))
    individual_best = None
    individual_reports: dict[str, TuningReport] = {}
    for index_type in INDEX_TYPES:
        space = build_milvus_space(index_types=(index_type,))
        environment = VDMSTuningEnvironment(dataset_name, space=space, seed=scale.seed)
        settings = scale.vdtuner_settings(num_iterations=per_index_budget, seed=scale.seed)
        tuner = VDTuner(environment, settings=settings, objective=ObjectiveSpec(), space=space)
        report = tuner.run(per_index_budget)
        individual_reports[index_type] = report
        candidate = report.best_observation(recall_floor=0.85) or report.best_observation()
        if candidate is not None and (individual_best is None or candidate.speed > individual_best.speed):
            individual_best = candidate

    return {
        "holistic": {
            "best_index_type": None if holistic_best is None else holistic_best.index_type,
            "best_speed": None if holistic_best is None else holistic_best.speed,
            "best_recall": None if holistic_best is None else holistic_best.recall,
            "report": holistic_report,
        },
        "individual": {
            "best_index_type": None if individual_best is None else individual_best.index_type,
            "best_speed": None if individual_best is None else individual_best.speed,
            "best_recall": None if individual_best is None else individual_best.recall,
            "reports": individual_reports,
        },
    }
