"""Tuner runners shared by every comparison experiment."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import make_tuner
from repro.core.objectives import ObjectiveSpec
from repro.core.tuner import TuningReport, VDTunerSettings
from repro.experiments.settings import ExperimentScale, current_scale
from repro.workloads.environment import VDMSTuningEnvironment
from repro.workloads.replay import EvaluationResult

__all__ = ["TunerRun", "run_tuner", "run_tuner_comparison", "PAPER_TUNERS"]

#: The five methods compared throughout the paper's evaluation.
PAPER_TUNERS: tuple[str, ...] = ("vdtuner", "random", "opentuner", "ottertune", "qehvi")


@dataclass
class TunerRun:
    """Outcome of running one tuner on one dataset.

    Attributes
    ----------
    tuner_name:
        Registry name of the tuner.
    dataset_name:
        Registry name of the dataset.
    report:
        The tuning report.
    default_result:
        Evaluation of the default configuration on the same environment,
        used by the improvement metrics.
    environment:
        The environment the run used (kept for clock/bookkeeping queries).
    """

    tuner_name: str
    dataset_name: str
    report: TuningReport
    default_result: EvaluationResult
    environment: VDMSTuningEnvironment


def run_tuner(
    tuner_name: str,
    dataset_name: str,
    *,
    iterations: int | None = None,
    objective: ObjectiveSpec | None = None,
    scale: ExperimentScale | None = None,
    seed: int | None = None,
    settings: VDTunerSettings | None = None,
    dataset_scale: float = 1.0,
    batch_size: int = 1,
    workers: int = 1,
    parallel_backend: str = "process",
) -> TunerRun:
    """Run one tuner on one dataset and collect the standard artefacts.

    ``batch_size`` switches the tuner to joint q-EHVI batch suggestions and
    ``workers`` evaluates each batch on a :class:`repro.parallel.BatchEvaluator`
    worker pool (``parallel_backend`` selects process/thread/serial workers).
    The evaluation budget is the same in all modes; only the wall-clock and
    the replay-clock accounting change.
    """
    scale = scale or current_scale()
    iterations = int(iterations or scale.tuning_iterations)
    seed = scale.seed if seed is None else int(seed)
    environment = VDMSTuningEnvironment(dataset_name, seed=seed, dataset_scale=dataset_scale)
    default_result = environment.evaluate(environment.default_configuration())
    environment.reset_history()

    if tuner_name.lower() == "vdtuner" and settings is None:
        settings = scale.vdtuner_settings(num_iterations=iterations, seed=seed)
    tuner = make_tuner(tuner_name, environment, objective=objective, seed=seed, settings=settings)
    batch_size = max(1, int(batch_size))
    evaluator = None
    if workers > 1:
        from repro.parallel import BatchEvaluator

        evaluator = BatchEvaluator.from_environment(
            environment, num_workers=workers, backend=parallel_backend
        )
    try:
        if batch_size > 1 or evaluator is not None:
            report = tuner.run(iterations, batch_size=batch_size, evaluator=evaluator)
        else:
            report = tuner.run(iterations)
    finally:
        if evaluator is not None:
            evaluator.close()
    return TunerRun(
        tuner_name=tuner_name.lower(),
        dataset_name=dataset_name,
        report=report,
        default_result=default_result,
        environment=environment,
    )


def run_tuner_comparison(
    dataset_name: str,
    *,
    tuners: tuple[str, ...] = PAPER_TUNERS,
    iterations: int | None = None,
    objective: ObjectiveSpec | None = None,
    scale: ExperimentScale | None = None,
    seed: int | None = None,
) -> dict[str, TunerRun]:
    """Run every tuner on the same dataset with the same budget."""
    scale = scale or current_scale()
    return {
        tuner_name: run_tuner(
            tuner_name,
            dataset_name,
            iterations=iterations,
            objective=objective,
            scale=scale,
            seed=seed,
        )
        for tuner_name in tuners
    }
