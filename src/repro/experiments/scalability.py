"""Scalability experiment: a much larger dataset (Section V-E, "Larger Datasets")."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.curves import iterations_to_reach, time_to_reach
from repro.analysis.tradeoff import best_speed_at_sacrifice
from repro.experiments.runner import run_tuner
from repro.experiments.settings import ExperimentScale, current_scale

__all__ = ["scalability_larger_dataset", "ScalabilityResult"]


@dataclass
class ScalabilityResult:
    """VDTuner versus qEHVI on the larger deep-image-style dataset.

    Attributes
    ----------
    dataset_name:
        The dataset the comparison ran on.
    recall_floor:
        The recall requirement used for the comparison (0.99 in the paper).
    vdtuner_best_speed, qehvi_best_speed:
        Best feasible speed of each tuner.
    speed_improvement:
        Relative improvement of VDTuner over qEHVI.
    tuning_speedup:
        Ratio of the time qEHVI needs to reach its own best performance to
        the time VDTuner needs to reach that same performance (> 1 means
        VDTuner is faster).
    """

    dataset_name: str
    recall_floor: float
    vdtuner_best_speed: float
    qehvi_best_speed: float
    speed_improvement: float
    tuning_speedup: float | None


def scalability_larger_dataset(
    dataset_name: str = "deep-image-small",
    *,
    recall_floor: float = 0.99,
    scale: ExperimentScale | None = None,
    dataset_scale: float | None = None,
) -> ScalabilityResult:
    """Compare VDTuner with the strongest baseline (qEHVI) on a larger dataset."""
    scale = scale or current_scale()
    # ``deep-image-small`` is already 10x GloVe; an explicit dataset_scale can
    # shrink it further for quick runs (the fast scale uses a fraction).
    if dataset_scale is None:
        dataset_scale = 1.0 if scale.name == "full" else scale.scalability_scale / 10.0
    iterations = max(10, scale.ablation_iterations // 2)

    vdtuner_run = run_tuner(
        "vdtuner", dataset_name, scale=scale, iterations=iterations, dataset_scale=dataset_scale
    )
    qehvi_run = run_tuner(
        "qehvi", dataset_name, scale=scale, iterations=iterations, dataset_scale=dataset_scale
    )

    sacrifice = 1.0 - recall_floor
    vdtuner_best = best_speed_at_sacrifice(vdtuner_run.report.history, sacrifice)
    qehvi_best = best_speed_at_sacrifice(qehvi_run.report.history, sacrifice)

    speedup = None
    if qehvi_best > 0:
        qehvi_time = time_to_reach(qehvi_run.report, qehvi_best, recall_floor=recall_floor)
        vdtuner_time = time_to_reach(vdtuner_run.report, qehvi_best, recall_floor=recall_floor)
        if qehvi_time and vdtuner_time and vdtuner_time > 0:
            speedup = qehvi_time / vdtuner_time
    improvement = 0.0 if qehvi_best <= 0 else (vdtuner_best - qehvi_best) / qehvi_best
    return ScalabilityResult(
        dataset_name=dataset_name,
        recall_floor=recall_floor,
        vdtuner_best_speed=float(vdtuner_best),
        qehvi_best_speed=float(qehvi_best),
        speed_improvement=float(improvement),
        tuning_speedup=speedup,
    )
