"""Cost-effectiveness experiment (Figure 13)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.attribution import shapley_attribution
from repro.core.cost_aware import CostComparison, compare_cost_vs_speed, cost_effectiveness_objective
from repro.core.objectives import ObjectiveSpec
from repro.experiments.runner import run_tuner
from repro.experiments.settings import ExperimentScale, current_scale
from repro.workloads.environment import VDMSTuningEnvironment

__all__ = ["figure13_cost_effectiveness", "CostEffectivenessResult"]

#: Parameters attributed in Figure 13(b).
ATTRIBUTED_PARAMETERS: tuple[str, ...] = ("insert_buf_size", "segment_max_size", "index_type", "nprobe")


@dataclass
class CostEffectivenessResult:
    """Figure 13: cost-aware versus speed-only optimization.

    Attributes
    ----------
    comparison:
        The relative-performance and memory summary (Figure 13a).
    memory_attribution:
        Parameter → GiB contribution of the speed-optimal configuration
        relative to the default (Figure 13b, upper panel).
    speed_attribution:
        Parameter → QPS contribution (Figure 13b, lower panel).
    """

    comparison: CostComparison
    memory_attribution: dict[str, float]
    speed_attribution: dict[str, float]


def figure13_cost_effectiveness(
    dataset_name: str = "geo-radius-small",
    *,
    recall_floor: float = 0.85,
    scale: ExperimentScale | None = None,
) -> CostEffectivenessResult:
    """Run the QP$-vs-QPS comparison and the parameter attribution."""
    scale = scale or current_scale()
    qps_run = run_tuner("vdtuner", dataset_name, scale=scale, objective=ObjectiveSpec())
    qpd_run = run_tuner(
        "vdtuner", dataset_name, scale=scale, objective=cost_effectiveness_objective()
    )
    comparison = compare_cost_vs_speed(
        qpd_run.report, qps_run.report, recall_floor=recall_floor
    )

    best = qps_run.report.best_observation(recall_floor=recall_floor) or qps_run.report.best_observation()
    environment = VDMSTuningEnvironment(dataset_name, seed=scale.seed)
    space = environment.space
    baseline = environment.default_configuration().to_dict()
    target = dict(best.configuration) if best is not None else dict(baseline)

    def evaluate_memory(values) -> float:
        return environment.evaluate(space.configuration(values)).memory_gib

    def evaluate_speed(values) -> float:
        return environment.evaluate(space.configuration(values)).qps

    memory_attribution = shapley_attribution(
        evaluate_memory, target, baseline, list(ATTRIBUTED_PARAMETERS)
    )
    speed_attribution = shapley_attribution(
        evaluate_speed, target, baseline, list(ATTRIBUTED_PARAMETERS)
    )
    return CostEffectivenessResult(
        comparison=comparison,
        memory_attribution=memory_attribution,
        speed_attribution=speed_attribution,
    )
