"""Tuner-comparison experiments (Table IV, Figure 6, Figure 7, Table VI)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.curves import best_so_far_curve, iterations_to_reach, time_to_reach
from repro.analysis.improvement import ImprovementReport, improvement_over_default
from repro.analysis.tradeoff import DEFAULT_SACRIFICES, speed_vs_sacrifice_curve, tradeoff_ability
from repro.experiments.runner import PAPER_TUNERS, TunerRun, run_tuner, run_tuner_comparison
from repro.experiments.settings import ExperimentScale, current_scale

__all__ = [
    "table4_improvement",
    "figure6_speed_vs_sacrifice",
    "figure7_optimization_curves",
    "table6_overhead",
    "Figure6Result",
    "Figure7Result",
    "OverheadRow",
]

#: Datasets of Table III used throughout the comparison experiments.
PAPER_DATASETS: tuple[str, ...] = ("glove-small", "keyword-match-small", "geo-radius-small")


def table4_improvement(
    dataset_names: tuple[str, ...] = PAPER_DATASETS,
    *,
    scale: ExperimentScale | None = None,
) -> dict[str, ImprovementReport]:
    """Improvement of VDTuner over the default configuration per dataset (Table IV)."""
    scale = scale or current_scale()
    reports: dict[str, ImprovementReport] = {}
    for dataset_name in dataset_names:
        run = run_tuner("vdtuner", dataset_name, scale=scale)
        reports[dataset_name] = improvement_over_default(run.report.history, run.default_result)
    return reports


@dataclass
class Figure6Result:
    """Speed-vs-sacrifice curves of every tuner on one dataset."""

    dataset_name: str
    sacrifices: tuple[float, ...]
    curves: dict[str, dict[float, float]]
    tradeoff_abilities: dict[str, float]
    runs: dict[str, TunerRun]


def figure6_speed_vs_sacrifice(
    dataset_name: str,
    *,
    tuners: tuple[str, ...] = PAPER_TUNERS,
    sacrifices: tuple[float, ...] = DEFAULT_SACRIFICES,
    scale: ExperimentScale | None = None,
) -> Figure6Result:
    """Best speed per recall sacrifice for every tuner (one Figure 6 panel)."""
    scale = scale or current_scale()
    runs = run_tuner_comparison(dataset_name, tuners=tuners, scale=scale)
    curves = {
        name: speed_vs_sacrifice_curve(run.report.history, sacrifices) for name, run in runs.items()
    }
    abilities = {name: tradeoff_ability(run.report.history, sacrifices) for name, run in runs.items()}
    return Figure6Result(
        dataset_name=dataset_name,
        sacrifices=sacrifices,
        curves=curves,
        tradeoff_abilities=abilities,
        runs=runs,
    )


@dataclass
class Figure7Result:
    """Best-so-far optimization curves under several recall floors (Figure 7)."""

    dataset_name: str
    recall_floors: tuple[float, ...]
    curves: dict[float, dict[str, np.ndarray]]
    iterations_to_match_best_baseline: dict[float, dict[str, int | None]]
    time_to_match_best_baseline: dict[float, dict[str, float | None]]
    runs: dict[str, TunerRun]


def figure7_optimization_curves(
    dataset_name: str = "glove-small",
    *,
    tuners: tuple[str, ...] = PAPER_TUNERS,
    recall_floors: tuple[float, ...] = (0.9, 0.925, 0.95, 0.975, 0.99),
    scale: ExperimentScale | None = None,
    runs: dict[str, TunerRun] | None = None,
) -> Figure7Result:
    """Optimization curves and the sample/time efficiency derived from them."""
    scale = scale or current_scale()
    runs = runs or run_tuner_comparison(dataset_name, tuners=tuners, scale=scale)
    curves: dict[float, dict[str, np.ndarray]] = {}
    iterations_needed: dict[float, dict[str, int | None]] = {}
    time_needed: dict[float, dict[str, float | None]] = {}
    for floor in recall_floors:
        curves[floor] = {
            name: best_so_far_curve(run.report.history, recall_floor=floor)
            for name, run in runs.items()
        }
        # The efficiency metric of the paper: resources needed to reach the
        # best performance achieved by the most competitive *baseline*.
        baseline_best = max(
            (curves[floor][name][-1] for name in runs if name != "vdtuner"), default=0.0
        )
        iterations_needed[floor] = {
            name: iterations_to_reach(run.report.history, baseline_best, recall_floor=floor)
            for name, run in runs.items()
        }
        time_needed[floor] = {
            name: time_to_reach(run.report, baseline_best, recall_floor=floor)
            for name, run in runs.items()
        }
    return Figure7Result(
        dataset_name=dataset_name,
        recall_floors=recall_floors,
        curves=curves,
        iterations_to_match_best_baseline=iterations_needed,
        time_to_match_best_baseline=time_needed,
        runs=runs,
    )


@dataclass
class OverheadRow:
    """One row of Table VI: the tuning-time breakdown of one method."""

    tuner_name: str
    recommendation_seconds: float
    replay_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total tuning time."""
        return self.recommendation_seconds + self.replay_seconds

    @property
    def recommendation_share(self) -> float:
        """Fraction of the total spent recommending configurations."""
        total = self.total_seconds
        return 0.0 if total <= 0 else self.recommendation_seconds / total


def table6_overhead(
    dataset_name: str = "glove-small",
    *,
    tuners: tuple[str, ...] = PAPER_TUNERS,
    scale: ExperimentScale | None = None,
    runs: dict[str, TunerRun] | None = None,
) -> dict[str, OverheadRow]:
    """Tuning-time breakdown per method (Table VI)."""
    scale = scale or current_scale()
    runs = runs or run_tuner_comparison(dataset_name, tuners=tuners, scale=scale)
    rows: dict[str, OverheadRow] = {}
    for name, run in runs.items():
        rows[name] = OverheadRow(
            tuner_name=name,
            recommendation_seconds=float(run.report.recommendation_seconds),
            replay_seconds=float(sum(o.result.replay_seconds for o in run.report.history)),
        )
    return rows
