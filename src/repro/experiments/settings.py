"""Experiment scale settings.

The paper runs 200 tuning iterations per method per dataset on a 72-core
server.  The simulated substrate is fast, but running every benchmark at
paper scale still takes a while, so the harness has two scales:

* **fast** (default): reduced iteration counts and candidate pools; the whole
  benchmark suite completes in minutes while preserving the qualitative
  comparisons (who wins, roughly by how much).
* **full**: paper-scale iteration counts; enable by setting the environment
  variable ``VDTUNER_FULL=1``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.tuner import VDTunerSettings

__all__ = ["ExperimentScale", "current_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Iteration budgets and pool sizes used by the experiment harness.

    Attributes
    ----------
    name:
        ``"fast"`` or ``"full"``.
    tuning_iterations:
        Evaluations per tuner per dataset (200 in the paper).
    preference_iterations:
        Evaluations per user-preference stage (200 in the paper).
    ablation_iterations:
        Evaluations per ablation variant.
    candidate_pool_size, ehvi_samples:
        Acquisition-optimization effort per iteration.
    grid_resolution:
        Grid resolution of the Figure 1 parameter sweep.
    scalability_scale:
        Dataset scale factor of the "larger dataset" study (the paper uses a
        dataset 10x the size of GloVe).
    seed:
        Base random seed shared by the harness.
    """

    name: str = "fast"
    tuning_iterations: int = 36
    preference_iterations: int = 18
    ablation_iterations: int = 30
    candidate_pool_size: int = 96
    ehvi_samples: int = 32
    grid_resolution: int = 5
    scalability_scale: float = 3.0
    seed: int = 7

    def vdtuner_settings(self, **overrides) -> VDTunerSettings:
        """Tuner settings matching this scale (overridable per experiment)."""
        values = {
            "num_iterations": self.tuning_iterations,
            "abandon_window": max(3, self.tuning_iterations // 10),
            "candidate_pool_size": self.candidate_pool_size,
            "ehvi_samples": self.ehvi_samples,
            "seed": self.seed,
        }
        values.update(overrides)
        return VDTunerSettings(**values)


_FULL_SCALE = ExperimentScale(
    name="full",
    tuning_iterations=200,
    preference_iterations=200,
    ablation_iterations=100,
    candidate_pool_size=192,
    ehvi_samples=64,
    grid_resolution=8,
    scalability_scale=10.0,
    seed=7,
)


def current_scale() -> ExperimentScale:
    """The scale selected by the ``VDTUNER_FULL`` environment variable."""
    if os.environ.get("VDTUNER_FULL", "").strip() in ("1", "true", "yes"):
        return _FULL_SCALE
    return ExperimentScale()
