"""Experiment harness: one function per paper table/figure.

Every function returns plain data structures (dicts / dataclasses) and the
``benchmarks/`` scripts print them as the rows/series the paper reports.  The
:class:`~repro.experiments.settings.ExperimentScale` object controls how
large each experiment runs: the default "fast" scale keeps the whole suite in
CI-friendly territory, while setting the environment variable
``VDTUNER_FULL=1`` switches to paper-scale iteration counts.
"""

from repro.experiments.settings import ExperimentScale, current_scale
from repro.experiments.runner import run_tuner, run_tuner_comparison, TunerRun
from repro.experiments.motivation import (
    figure1_parameter_grid,
    figure2_index_vs_system,
    figure3_conflicting_objectives,
    figure3_optimization_curves,
)
from repro.experiments.comparison import (
    figure6_speed_vs_sacrifice,
    figure7_optimization_curves,
    table4_improvement,
    table6_overhead,
)
from repro.experiments.ablation import (
    figure8_ablation,
    figure9_score_dynamics,
    figure10_sampling_quality,
    figure11_parameter_convergence,
    holistic_vs_individual,
)
from repro.experiments.preference import figure12_user_preference
from repro.experiments.cost import figure13_cost_effectiveness
from repro.experiments.best_configs import table5_best_configurations
from repro.experiments.scalability import scalability_larger_dataset
from repro.experiments.scenario_matrix import (
    DRIFT_SCENARIOS,
    run_scenario,
    run_scenario_matrix,
    save_matrix,
)

__all__ = [
    "DRIFT_SCENARIOS",
    "ExperimentScale",
    "TunerRun",
    "current_scale",
    "run_scenario",
    "run_scenario_matrix",
    "save_matrix",
    "figure10_sampling_quality",
    "figure11_parameter_convergence",
    "figure12_user_preference",
    "figure13_cost_effectiveness",
    "figure1_parameter_grid",
    "figure2_index_vs_system",
    "figure3_conflicting_objectives",
    "figure3_optimization_curves",
    "figure6_speed_vs_sacrifice",
    "figure7_optimization_curves",
    "figure8_ablation",
    "figure9_score_dynamics",
    "holistic_vs_individual",
    "run_tuner",
    "run_tuner_comparison",
    "scalability_larger_dataset",
    "table4_improvement",
    "table5_best_configurations",
    "table6_overhead",
]
