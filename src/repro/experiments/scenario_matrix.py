"""Scenario-matrix regression harness for online tuning under drift.

Sweeps ``{drift scenario} x {severity} x {tuner}`` over the online tuning
loop and collects, for every cell, the per-phase Pareto fronts, hypervolumes,
time-to-recover and detection delays — the regression surface that guards
the dynamic-workload subsystem: a change that slows recovery or shrinks a
post-drift front shows up as a changed matrix cell.

The matrix is plain data (nested dicts/lists) and serializes to JSON with
:func:`save_matrix`, so benchmark runs can be diffed across commits.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.core.objectives import ObjectiveSpec
from repro.core.online import OnlineTuner, OnlineTunerSettings
from repro.core.tuner import VDTunerSettings
from repro.datasets.registry import load_dataset
from repro.experiments.settings import ExperimentScale, current_scale
from repro.workloads.dynamic import (
    DynamicTuningEnvironment,
    DynamicWorkload,
    make_drift_event,
)

__all__ = [
    "DRIFT_SCENARIOS",
    "MATRIX_TUNERS",
    "run_scenario",
    "run_scenario_matrix",
    "save_matrix",
]

#: The four drift families every matrix run covers by default.
DRIFT_SCENARIOS: tuple[str, ...] = ("query_shift", "data_churn", "qps_burst", "filter_shift")

#: Default tuners compared per scenario (the paper's method and a baseline).
MATRIX_TUNERS: tuple[str, ...] = ("vdtuner", "random")


def _online_settings(
    scale: ExperimentScale,
    *,
    total_steps: int | None,
    retune_budget: int | None,
    warm_start: bool,
    batch_size: int,
    seed: int,
) -> OnlineTunerSettings:
    total = int(total_steps or max(24, scale.tuning_iterations))
    budget = int(retune_budget or max(6, total // 4))
    return OnlineTunerSettings(
        total_steps=total,
        retune_budget=min(budget, total),
        warm_start=warm_start,
        detector_threshold=4.0,
        detector_warmup=2,
        batch_size=batch_size,
        seed=seed,
    )


def _default_drift_step(settings: OnlineTunerSettings) -> int:
    """Fire 60% through the run, after the first episode is serving."""
    return max(
        settings.retune_budget + settings.detector_warmup + 2,
        round(0.6 * settings.total_steps),
    )


def run_scenario(
    dataset_name: str,
    drift: str,
    severity: float,
    tuner: str = "vdtuner",
    *,
    drift_step: int | None = None,
    total_steps: int | None = None,
    retune_budget: int | None = None,
    warm_start: bool = True,
    batch_size: int = 1,
    evaluator=None,
    objective: ObjectiveSpec | None = None,
    scale: ExperimentScale | None = None,
    seed: int = 0,
    dynamic: DynamicWorkload | None = None,
) -> dict[str, Any]:
    """Run one online tuning scenario and return its JSON-able summary.

    The scenario is one drift event of the given family and severity, fired
    at ``drift_step`` (default: 60% through the run, late enough that the
    first tuning episode has finished and the incumbent is being served).
    ``dynamic`` optionally supplies a pre-built (and possibly already
    materialized) timeline for exactly that scenario, so sweeps can share one
    ground-truth computation across tuners; it must match the
    ``drift``/``severity``/``drift_step`` arguments, which still label the
    returned summary.
    """
    scale = scale or current_scale()
    settings = _online_settings(
        scale,
        total_steps=total_steps,
        retune_budget=retune_budget,
        warm_start=warm_start,
        batch_size=batch_size,
        seed=seed,
    )
    step = int(drift_step or _default_drift_step(settings))
    event = make_drift_event(drift, at_step=step, severity=severity)
    if dynamic is None:
        dynamic = DynamicWorkload(load_dataset(dataset_name), [event], seed=seed)
    environment = DynamicTuningEnvironment(dynamic, seed=seed)
    tuner_settings = VDTunerSettings(
        candidate_pool_size=scale.candidate_pool_size,
        ehvi_samples=scale.ehvi_samples,
        seed=seed,
    )
    online = OnlineTuner(
        environment,
        tuner=tuner,
        settings=settings,
        objective=objective,
        tuner_settings=tuner_settings,
        evaluator=evaluator,
    )
    report = online.run()
    summary = report.summary()
    summary.update(
        {
            "dataset": dataset_name,
            "drift": event.name,
            "severity": float(severity),
            "drift_step": step,
        }
    )
    return summary


def run_scenario_matrix(
    dataset_name: str = "glove-small",
    *,
    drifts: Sequence[str] = DRIFT_SCENARIOS,
    severities: Sequence[float] = (0.35, 0.7),
    tuners: Sequence[str] = MATRIX_TUNERS,
    total_steps: int | None = None,
    retune_budget: int | None = None,
    warm_start: bool = True,
    batch_size: int = 1,
    evaluator=None,
    scale: ExperimentScale | None = None,
    seed: int = 0,
) -> dict[str, Any]:
    """Sweep {drift x severity x tuner} and collect every cell's summary.

    Returns a JSON-able dict with one entry per cell under ``"cells"`` plus
    the sweep axes, suitable for :func:`save_matrix`.
    """
    scale = scale or current_scale()
    settings = _online_settings(
        scale,
        total_steps=total_steps,
        retune_budget=retune_budget,
        warm_start=warm_start,
        batch_size=batch_size,
        seed=seed,
    )
    drift_step = _default_drift_step(settings)
    cells: list[dict[str, Any]] = []
    for drift in drifts:
        for severity in severities:
            # One timeline per (drift, severity): every tuner in the cell
            # replays the identical drifted workload, and the expensive
            # ground-truth recomputation happens once, not once per tuner.
            event = make_drift_event(drift, at_step=drift_step, severity=severity)
            dynamic = DynamicWorkload(load_dataset(dataset_name), [event], seed=seed)
            for tuner in tuners:
                cell = run_scenario(
                    dataset_name,
                    drift,
                    severity,
                    tuner,
                    drift_step=drift_step,
                    total_steps=total_steps,
                    retune_budget=retune_budget,
                    warm_start=warm_start,
                    batch_size=batch_size,
                    evaluator=evaluator,
                    scale=scale,
                    seed=seed,
                    dynamic=dynamic,
                )
                cells.append(cell)
    return {
        "dataset": dataset_name,
        "drifts": list(drifts),
        "severities": [float(s) for s in severities],
        "tuners": list(tuners),
        "seed": int(seed),
        "warm_start": bool(warm_start),
        "cells": cells,
    }


def save_matrix(matrix: dict[str, Any], path: str | Path) -> Path:
    """Persist a scenario matrix to JSON (pretty-printed, stable key order)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(matrix, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
