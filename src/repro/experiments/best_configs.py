"""Best configuration per dataset (Table V)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.milvus_space import INDEX_PARAMETERS
from repro.experiments.runner import run_tuner
from repro.experiments.settings import ExperimentScale, current_scale

__all__ = ["table5_best_configurations", "BestConfigurationRow"]

#: The datasets reported in Table V.
TABLE5_DATASETS: tuple[str, ...] = ("glove-small", "arxiv-titles-small", "keyword-match-small")


@dataclass
class BestConfigurationRow:
    """One column of Table V: the best configuration found for a dataset.

    Attributes
    ----------
    dataset_name:
        Registry name of the dataset.
    index_type:
        Index type of the best configuration.
    index_parameters:
        Only the index parameters relevant to the chosen index type.
    speed, recall:
        Performance of the best configuration.
    """

    dataset_name: str
    index_type: str
    index_parameters: dict[str, int]
    speed: float
    recall: float


def table5_best_configurations(
    dataset_names: tuple[str, ...] = TABLE5_DATASETS,
    *,
    recall_floor: float = 0.85,
    scale: ExperimentScale | None = None,
) -> dict[str, BestConfigurationRow]:
    """Run VDTuner per dataset and report the recommended index + parameters."""
    scale = scale or current_scale()
    rows: dict[str, BestConfigurationRow] = {}
    for dataset_name in dataset_names:
        run = run_tuner("vdtuner", dataset_name, scale=scale)
        best = run.report.best_observation(recall_floor=recall_floor) or run.report.best_observation()
        if best is None:
            continue
        relevant = INDEX_PARAMETERS.get(best.index_type, ())
        rows[dataset_name] = BestConfigurationRow(
            dataset_name=dataset_name,
            index_type=best.index_type,
            index_parameters={name: int(best.configuration[name]) for name in relevant},
            speed=float(best.speed),
            recall=float(best.recall),
        )
    return rows
