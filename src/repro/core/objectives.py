"""Objective specifications.

VDTuner always optimizes two objectives — a speed-like objective and recall.
The speed-like objective is either plain search speed (QPS) or cost
effectiveness (QP$, Eq. 8 of the paper).  An optional recall constraint turns
the problem into "maximize speed subject to recall >= limit" (Section IV-F).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.replay import EvaluationResult

__all__ = ["ObjectiveSpec"]


@dataclass(frozen=True)
class ObjectiveSpec:
    """What the tuner optimizes.

    Attributes
    ----------
    speed_metric:
        ``"qps"`` for search speed or ``"qp$"`` for cost effectiveness.
    recall_constraint:
        If set, the user preference "recall rate must exceed this value";
        the tuner then maximizes the speed metric inside the feasible region
        using the constrained acquisition function.
    price_per_gib_second:
        The ``eta`` of Eq. 8; only the product with memory matters and the
        paper notes the value does not change the optimization, so the
        default is 1.

    Examples
    --------
    >>> from repro import ObjectiveSpec
    >>> ObjectiveSpec().constrained
    False
    >>> constrained = ObjectiveSpec(recall_constraint=0.9)
    >>> constrained.satisfies_constraint(0.95), constrained.satisfies_constraint(0.85)
    (True, False)
    >>> ObjectiveSpec(speed_metric="qp$").speed_metric
    'qp$'
    """

    speed_metric: str = "qps"
    recall_constraint: float | None = None
    price_per_gib_second: float = 1.0

    def __post_init__(self) -> None:
        if self.speed_metric not in ("qps", "qp$", "cost_effectiveness"):
            raise ValueError(f"unknown speed metric {self.speed_metric!r}")
        if self.recall_constraint is not None and not 0.0 < self.recall_constraint < 1.0:
            raise ValueError("recall_constraint must lie in (0, 1)")
        if self.price_per_gib_second <= 0:
            raise ValueError("price_per_gib_second must be positive")

    @property
    def constrained(self) -> bool:
        """Whether a recall constraint is active."""
        return self.recall_constraint is not None

    def speed_value(self, result: EvaluationResult) -> float:
        """Extract the speed-like objective from an evaluation result."""
        if self.speed_metric == "qps":
            return float(result.qps)
        if result.memory_gib <= 0:
            return 0.0
        return float(result.qps / (self.price_per_gib_second * result.memory_gib))

    def objective_values(self, result: EvaluationResult) -> tuple[float, float]:
        """The ``(speed-like, recall)`` objective pair of a result."""
        return self.speed_value(result), float(result.recall)

    def satisfies_constraint(self, recall: float) -> bool:
        """Whether a recall value satisfies the user constraint (if any)."""
        if self.recall_constraint is None:
            return True
        return recall >= self.recall_constraint
