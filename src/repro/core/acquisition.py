"""Configuration recommendation for a polled index type.

Section IV-C of the paper: when index type ``t`` is polled, the acquisition
function fixes the index type to ``t``, fixes the parameters not belonging to
``t`` at their defaults, and searches over the parameters of ``t`` (its index
parameters plus the shared system parameters) for the configuration with the
highest utility:

* without a user preference the utility is EHVI (Eq. 4) with reference point
  ``0.5 x`` the index type's balanced base performance;
* with a recall-rate preference the utility is the constrained EI of Eq. 7.

The acquisition is maximized over a finite candidate pool: Latin-hypercube
samples of the relevant sub-space plus Gaussian perturbations of the index
type's best observed configurations — the usual derivative-free approach for
mixed discrete/continuous spaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bo.acquisition import expected_improvement, probability_of_feasibility
from repro.bo.ehvi import monte_carlo_ehvi
from repro.bo.sampling import latin_hypercube
from repro.config import Configuration, ConfigurationSpace
from repro.config.milvus_space import parameters_for_index
from repro.core.history import ObservationHistory
from repro.core.objectives import ObjectiveSpec
from repro.core.surrogate import PollingSurrogate

__all__ = ["ConfigurationRecommender"]


@dataclass
class ConfigurationRecommender:
    """Recommends the next configuration for a polled index type.

    Parameters
    ----------
    space:
        The holistic configuration space.
    candidate_pool_size:
        Number of candidate configurations scored per recommendation.
    ehvi_samples:
        Monte-Carlo samples used by the EHVI estimator.
    reference_scale:
        Scale of the EHVI reference point relative to the balanced base
        performance (the paper uses 0.5).
    perturbation_scale:
        Standard deviation (in unit-hypercube coordinates) of the local
        perturbations applied around the best observed configurations.
    """

    space: ConfigurationSpace
    candidate_pool_size: int = 192
    ehvi_samples: int = 64
    reference_scale: float = 0.5
    perturbation_scale: float = 0.08

    # -- candidate generation ------------------------------------------------------

    def _free_parameter_names(self, index_type: str) -> list[str]:
        names = [name for name in parameters_for_index(index_type) if name in self.space]
        return names

    def generate_candidates(
        self,
        index_type: str,
        history: ObservationHistory,
        rng: np.random.Generator,
    ) -> list[Configuration]:
        """Build the candidate pool for one polled index type."""
        free_names = self._free_parameter_names(index_type)
        defaults = {p.name: p.default for p in self.space.parameters}
        defaults["index_type"] = index_type

        pool_size = max(8, int(self.candidate_pool_size))
        num_random = pool_size // 2
        num_local = pool_size - num_random

        candidates: list[Configuration] = []

        # Space-filling candidates over the free sub-space.
        if free_names:
            lhs = latin_hypercube(num_random, len(free_names), rng)
            for row in lhs:
                values = dict(defaults)
                for column, name in enumerate(free_names):
                    values[name] = self.space[name].from_unit(float(row[column]))
                candidates.append(self.space.configuration(values))
        else:
            candidates.append(self.space.configuration(defaults))

        # Local perturbations around the index type's best observations.
        elites = history.non_dominated(index_type)
        if elites and free_names:
            elite_vectors = self.space.encode_many([o.configuration for o in elites])
            free_positions = [self.space.index_of(name) for name in free_names]
            for sample in range(num_local):
                base = elite_vectors[sample % elite_vectors.shape[0]].copy()
                noise = rng.normal(scale=self.perturbation_scale, size=len(free_positions))
                for offset, position in enumerate(free_positions):
                    base[position] = float(np.clip(base[position] + noise[offset], 0.0, 1.0))
                values = self.space.decode(base).to_dict()
                # Pin the parameters outside the polled sub-space back to defaults.
                for name in self.space.names:
                    if name not in free_names and name != "index_type":
                        values[name] = defaults[name]
                values["index_type"] = index_type
                candidates.append(self.space.configuration(values))
        return candidates

    # -- acquisition -----------------------------------------------------------------

    def recommend(
        self,
        surrogate: PollingSurrogate,
        history: ObservationHistory,
        index_type: str,
        objective: ObjectiveSpec,
        rng: np.random.Generator,
        *,
        exclude: list[Configuration] | None = None,
    ) -> Configuration:
        """Pick the candidate with the highest acquisition value.

        ``exclude`` lists configurations that must not be suggested again —
        the batch built so far during sequential-greedy q-EHVI selection.
        """
        candidates = self.generate_candidates(index_type, history, rng)
        prediction = surrogate.predict(candidates)
        if objective.constrained:
            scores = self._constrained_scores(surrogate, history, index_type, objective, prediction)
        else:
            scores = self._ehvi_scores(surrogate, index_type, prediction, rng)

        excluded = set(exclude or [])
        order = np.argsort(-scores)
        for position in order:
            candidate = candidates[int(position)]
            if candidate in excluded:
                continue
            if not history.contains_configuration(candidate.to_dict()):
                return candidate
        for position in order:
            candidate = candidates[int(position)]
            if candidate not in excluded:
                return candidate
        return candidates[int(order[0])]

    def _ehvi_scores(
        self,
        surrogate: PollingSurrogate,
        index_type: str,
        prediction,
        rng: np.random.Generator,
    ) -> np.ndarray:
        reference = surrogate.reference_point(index_type, scale=self.reference_scale)
        observed = surrogate.observed_objectives()
        return monte_carlo_ehvi(
            prediction.mean,
            prediction.std,
            observed,
            reference,
            num_samples=self.ehvi_samples,
            rng=rng,
        )

    def _constrained_scores(
        self,
        surrogate: PollingSurrogate,
        history: ObservationHistory,
        index_type: str,
        objective: ObjectiveSpec,
        prediction,
    ) -> np.ndarray:
        """Constrained EI (Eq. 7): EI on speed times the feasibility probability."""
        threshold = surrogate.normalize_threshold(index_type, float(objective.recall_constraint))
        observed = surrogate.observed_objectives()
        feasible_mask = np.array(
            [not o.failed and objective.satisfies_constraint(o.recall) for o in history], dtype=bool
        )
        if observed.shape[0] and feasible_mask.any():
            best_feasible_speed = float(observed[feasible_mask, 0].max())
        elif observed.shape[0]:
            best_feasible_speed = float(observed[:, 0].min())
        else:
            best_feasible_speed = 0.0
        improvement = expected_improvement(prediction.mean[:, 0], prediction.std[:, 0], best_feasible_speed)
        feasibility = probability_of_feasibility(prediction.mean[:, 1], prediction.std[:, 1], threshold)
        return improvement * feasibility
