"""Workload-drift detection from observed performance residuals.

The online tuning loop serves the incumbent configuration between re-tuning
episodes and watches its observed ``(speed, recall)``.  Drift shows up as a
sustained shift of those observations away from the reference level
established right after the last re-tune — a textbook change-point problem,
handled here with a two-sided CUSUM on standardized residuals:

* the first ``warmup`` observations after a (re)start form the reference
  window (mean and standard deviation per metric);
* every later observation is standardized against the reference and folded
  into an upper and a lower cumulative sum per metric,
  ``S+ = max(0, S+ + z - drift)`` and ``S- = max(0, S- - z - drift)``;
* the detector fires when any cumulative sum exceeds ``threshold``.

The ``drift`` slack absorbs small persistent offsets (measurement noise, a
new incumbent measuring slightly differently), while a genuine workload shift
accumulates linearly and crosses the threshold within a few observations —
faster the larger the shift.  The simulated replayer is deterministic, so the
reference standard deviation is floored to keep the standardization finite.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CusumDriftDetector"]


class CusumDriftDetector:
    """Two-sided multivariate CUSUM detector on performance observations.

    Parameters
    ----------
    threshold:
        Alarm level of the cumulative sums, in reference standard deviations
        (larger = less sensitive, slower to fire).
    drift:
        Per-update slack subtracted from the standardized residual before it
        is accumulated; shifts smaller than ``drift`` sigmas never alarm.
    warmup:
        Observations used to build the reference window after each
        :meth:`reset`.
    min_relative_std:
        Floor of the reference standard deviation, relative to the absolute
        reference mean (the deterministic replayer often yields identical
        repeated observations, whose raw standard deviation is zero).

    Examples
    --------
    >>> from repro.core.drift import CusumDriftDetector
    >>> detector = CusumDriftDetector(threshold=4.0, warmup=3)
    >>> for _ in range(3):  # reference window: no alarms during warmup
    ...     _ = detector.update([100.0, 0.95])
    >>> detector.is_warm
    True
    >>> detector.update([100.0, 0.95])  # on-reference observation
    False
    >>> any(detector.update([60.0, 0.70]) for _ in range(5))  # sustained shift
    True
    """

    def __init__(
        self,
        *,
        threshold: float = 6.0,
        drift: float = 0.5,
        warmup: int = 4,
        min_relative_std: float = 0.02,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if drift < 0:
            raise ValueError("drift must be >= 0")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.threshold = float(threshold)
        self.drift = float(drift)
        self.warmup = int(warmup)
        self.min_relative_std = float(min_relative_std)
        self._reference: list[np.ndarray] = []
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._upper: np.ndarray | None = None
        self._lower: np.ndarray | None = None

    # -- state -------------------------------------------------------------------------

    @property
    def is_warm(self) -> bool:
        """Whether the reference window is complete and monitoring is active."""
        return self._mean is not None

    @property
    def statistic(self) -> float:
        """Largest current cumulative sum across metrics and directions."""
        if self._upper is None or self._lower is None:
            return 0.0
        return float(max(self._upper.max(), self._lower.max()))

    def reset(self) -> None:
        """Forget the reference window and all cumulative sums.

        Call after every re-tune: the new incumbent defines a new reference
        level, and pre-drift residuals must not leak into the next alarm.
        """
        self._reference = []
        self._mean = None
        self._std = None
        self._upper = None
        self._lower = None

    # -- monitoring --------------------------------------------------------------------

    def update(self, values) -> bool:
        """Fold one observation vector in; returns ``True`` when drift is detected.

        During warmup the observation extends the reference window and the
        detector never fires.  Once warm, the observation updates the
        cumulative sums.  The caller decides what to do on an alarm
        (typically: re-tune, then :meth:`reset`).
        """
        observation = np.atleast_1d(np.asarray(values, dtype=float))
        if self._mean is None:
            self._reference.append(observation)
            if len(self._reference) >= self.warmup:
                window = np.vstack(self._reference)
                self._mean = window.mean(axis=0)
                floor = np.maximum(self.min_relative_std * np.abs(self._mean), 1e-9)
                self._std = np.maximum(window.std(axis=0), floor)
                self._upper = np.zeros_like(self._mean)
                self._lower = np.zeros_like(self._mean)
            return False
        if observation.shape != self._mean.shape:
            raise ValueError("observation dimensionality changed between updates")
        z = (observation - self._mean) / self._std
        self._upper = np.maximum(0.0, self._upper + z - self.drift)
        self._lower = np.maximum(0.0, self._lower - z - self.drift)
        return bool(self.statistic > self.threshold)
