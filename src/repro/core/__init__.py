"""VDTuner core: the paper's primary contribution.

The public entry point is :class:`VDTuner` (with :class:`VDTunerSettings` and
:class:`~repro.core.objectives.ObjectiveSpec`); the remaining modules expose
the individual mechanisms — NPI normalization, the polling surrogate, the
hypervolume-influence scoring with successive abandonment, the EHVI /
constrained-EI recommendation step, preference handling and cost-aware
objectives — so the ablation benchmarks can exercise them separately.
"""

from repro.core.history import Observation, ObservationHistory
from repro.core.objectives import ObjectiveSpec
from repro.core.npi import index_type_base_points, normalize_objectives
from repro.core.scoring import RoundRobinPolicy, SuccessiveAbandonPolicy, score_index_types
from repro.core.surrogate import NativeSurrogate, PollingSurrogate, SurrogatePrediction
from repro.core.acquisition import ConfigurationRecommender
from repro.core.tuner import TuningReport, VDTuner, VDTunerSettings
from repro.core.drift import CusumDriftDetector
from repro.core.online import (
    OnlineReport,
    OnlineTuner,
    OnlineTunerSettings,
    StepRecord,
    decay_history,
)
from repro.core.preference import PreferenceStageResult, run_preference_sequence
from repro.core.cost_aware import CostComparison, compare_cost_vs_speed, cost_effectiveness_objective
from repro.core.multi_tenant import MultiTenantReport, MultiTenantTuner, TenantTunerSpec

__all__ = [
    "ConfigurationRecommender",
    "CostComparison",
    "CusumDriftDetector",
    "MultiTenantReport",
    "MultiTenantTuner",
    "TenantTunerSpec",
    "OnlineReport",
    "OnlineTuner",
    "OnlineTunerSettings",
    "StepRecord",
    "decay_history",
    "NativeSurrogate",
    "Observation",
    "ObservationHistory",
    "ObjectiveSpec",
    "PollingSurrogate",
    "PreferenceStageResult",
    "RoundRobinPolicy",
    "SuccessiveAbandonPolicy",
    "SurrogatePrediction",
    "TuningReport",
    "VDTuner",
    "VDTunerSettings",
    "compare_cost_vs_speed",
    "cost_effectiveness_objective",
    "index_type_base_points",
    "normalize_objectives",
    "run_preference_sequence",
    "score_index_types",
]
