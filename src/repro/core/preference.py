"""User-preference scenarios: recall constraints and bootstrapping.

Section IV-F / Figure 12 of the paper: users may ask for "maximize search
speed with recall above a threshold", and the threshold may change over time.
:func:`run_preference_sequence` runs a sequence of recall constraints, with
three modes matching the paper's comparison:

``"plain"``
    No constraint model and no bootstrapping — the constraint is ignored
    during search (both objectives are optimized) and only enforced when the
    best configuration is read out.
``"constraint"``
    The constraint model (constrained EI, Eq. 7) guides the search, but each
    new constraint starts from scratch.
``"bootstrap"``
    The constraint model plus warm-starting each new constraint's surrogate
    with the observations collected under the previous constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.history import ObservationHistory
from repro.core.objectives import ObjectiveSpec
from repro.core.tuner import TuningReport, VDTuner, VDTunerSettings
from repro.workloads.environment import VDMSTuningEnvironment

__all__ = ["PreferenceStageResult", "run_preference_sequence"]

_MODES = ("plain", "constraint", "bootstrap")


@dataclass
class PreferenceStageResult:
    """Outcome of tuning under one recall constraint.

    Attributes
    ----------
    recall_constraint:
        The constraint active during this stage.
    report:
        The tuning report of the stage.
    iterations_to_target:
        Iterations needed to first reach ``target_speed`` (if one was given),
        or ``None`` if it was never reached.
    """

    recall_constraint: float
    report: TuningReport
    iterations_to_target: int | None = None


def _iterations_to_reach(report: TuningReport, recall_constraint: float, target_speed: float | None) -> int | None:
    if target_speed is None:
        return None
    for observation in report.history:
        if observation.failed:
            continue
        if observation.recall >= recall_constraint and observation.speed >= target_speed:
            return observation.iteration
    return None


def run_preference_sequence(
    make_environment,
    recall_constraints: list[float],
    *,
    mode: str = "bootstrap",
    iterations_per_stage: int = 50,
    settings: VDTunerSettings | None = None,
    target_speeds: list[float] | None = None,
) -> list[PreferenceStageResult]:
    """Tune for a sequence of recall-rate preferences.

    Parameters
    ----------
    make_environment:
        Zero-argument callable returning a fresh
        :class:`~repro.workloads.environment.VDMSTuningEnvironment`; a fresh
        environment per stage keeps the per-stage tuning clocks separate.
    recall_constraints:
        The sequence of user preferences (the paper uses 0.85 then 0.9).
    mode:
        One of ``"plain"``, ``"constraint"``, ``"bootstrap"``.
    iterations_per_stage:
        Evaluation budget per constraint.
    settings:
        Tuner settings shared by every stage.
    target_speeds:
        Optional per-stage speed targets used to report "iterations needed to
        reach the same performance" as in the paper's Figure 12 discussion.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}")
    settings = settings or VDTunerSettings(num_iterations=iterations_per_stage)
    results: list[PreferenceStageResult] = []
    carried_history: ObservationHistory | None = None

    for stage, recall_constraint in enumerate(recall_constraints):
        environment: VDMSTuningEnvironment = make_environment()
        if mode == "plain":
            objective = ObjectiveSpec(recall_constraint=None)
        else:
            objective = ObjectiveSpec(recall_constraint=recall_constraint)
        bootstrap = carried_history if mode == "bootstrap" else None
        tuner = VDTuner(
            environment,
            settings=settings,
            objective=objective,
            bootstrap_history=bootstrap,
        )
        report = tuner.run(iterations_per_stage)
        target = target_speeds[stage] if target_speeds and stage < len(target_speeds) else None
        results.append(
            PreferenceStageResult(
                recall_constraint=recall_constraint,
                report=report,
                iterations_to_target=_iterations_to_reach(report, recall_constraint, target),
            )
        )
        if mode == "bootstrap":
            merged = ObservationHistory(carried_history.observations if carried_history else [])
            merged.extend(report.history.observations)
            carried_history = merged
    return results
