"""Cost-aware optimization (Section V-E, Eq. 8).

Replacing search speed (QPS) with cost effectiveness (QP$) only changes the
objective specification — the tuning machinery is untouched, which is the
point the paper makes ("our work is not limited by any specific resource or
price function").  This module provides the convenience constructors and the
comparison record used by the Figure 13 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.objectives import ObjectiveSpec
from repro.core.tuner import TuningReport

__all__ = ["cost_effectiveness_objective", "CostComparison", "compare_cost_vs_speed"]


def cost_effectiveness_objective(
    *, recall_constraint: float | None = None, price_per_gib_second: float = 1.0
) -> ObjectiveSpec:
    """An objective that maximizes QP$ (queries per dollar) and recall."""
    return ObjectiveSpec(
        speed_metric="qp$",
        recall_constraint=recall_constraint,
        price_per_gib_second=price_per_gib_second,
    )


@dataclass(frozen=True)
class CostComparison:
    """Summary of optimizing QP$ versus optimizing QPS (Figure 13a).

    Attributes
    ----------
    relative_cost_effectiveness:
        Best QP$ found when optimizing QP$, divided by the QP$ of the best
        configuration found when optimizing QPS (> 1 means the cost-aware
        objective pays off).
    relative_search_speed:
        Best QPS under the QP$ objective divided by best QPS under the QPS
        objective (expected slightly below 1).
    mean_memory_qpd, mean_memory_qps:
        Mean memory usage (GiB) of all configurations sampled under each
        objective.
    std_memory_qpd, std_memory_qps:
        Standard deviations of the same.
    """

    relative_cost_effectiveness: float
    relative_search_speed: float
    mean_memory_qpd: float
    mean_memory_qps: float
    std_memory_qpd: float
    std_memory_qps: float


def compare_cost_vs_speed(
    report_qpd: TuningReport,
    report_qps: TuningReport,
    *,
    recall_floor: float = 0.0,
) -> CostComparison:
    """Build the Figure 13(a) comparison from two tuning reports."""

    def best_values(report: TuningReport) -> tuple[float, float]:
        eligible = [o for o in report.history.successful() if o.recall >= recall_floor]
        if not eligible:
            return 0.0, 0.0
        best_qpd = max(o.result.cost_effectiveness for o in eligible)
        best_qps = max(o.result.qps for o in eligible)
        return best_qpd, best_qps

    def memory_stats(report: TuningReport) -> tuple[float, float]:
        values = np.array([o.result.memory_gib for o in report.history.successful()], dtype=float)
        if values.size == 0:
            return 0.0, 0.0
        return float(values.mean()), float(values.std())

    qpd_best_qpd, qpd_best_qps = best_values(report_qpd)
    qps_best_qpd, qps_best_qps = best_values(report_qps)
    mean_qpd, std_qpd = memory_stats(report_qpd)
    mean_qps, std_qps = memory_stats(report_qps)
    return CostComparison(
        relative_cost_effectiveness=qpd_best_qpd / qps_best_qpd if qps_best_qpd > 0 else 0.0,
        relative_search_speed=qpd_best_qps / qps_best_qps if qps_best_qps > 0 else 0.0,
        mean_memory_qpd=mean_qpd,
        mean_memory_qps=mean_qps,
        std_memory_qpd=std_qpd,
        std_memory_qps=std_qps,
    )
