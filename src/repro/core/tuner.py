"""VDTuner: the polling multi-objective Bayesian-optimization loop (Algorithm 1).

The tuner ties together the pieces defined in this package:

1. *Initial sampling*: every index type's default configuration is evaluated
   once (Algorithm 1, lines 1–5).
2. Each iteration, the remaining index types are re-scored by hypervolume
   influence and the persistently worst one may be abandoned (lines 7–14,
   :mod:`repro.core.scoring`).
3. A holistic surrogate is fitted on NPI-normalized observations (lines
   15–18, :mod:`repro.core.surrogate`).
4. The next index type is polled round-robin and the acquisition function
   recommends a configuration for it (lines 19–21,
   :mod:`repro.core.acquisition`).
5. The configuration is evaluated on the environment and the knowledge base
   is updated (line 22).

The same class also covers the paper's extensions: user recall-rate
preferences (constraint model, Section IV-F), bootstrapping from a previous
run's history, cost-aware objectives (Section V-E), and the ablation switches
(round-robin budget allocation, native surrogate) used in Figure 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.config import Configuration, ConfigurationSpace
from repro.core.acquisition import ConfigurationRecommender
from repro.core.history import Observation, ObservationHistory
from repro.core.objectives import ObjectiveSpec
from repro.core.scoring import RoundRobinPolicy, SuccessiveAbandonPolicy
from repro.core.surrogate import NativeSurrogate, PollingSurrogate
from repro.workloads.environment import VDMSTuningEnvironment
from repro.workloads.replay import EvaluationResult

__all__ = ["VDTuner", "VDTunerSettings", "TuningReport"]


@dataclass(frozen=True)
class VDTunerSettings:
    """Knobs of the tuning loop itself.

    Attributes
    ----------
    num_iterations:
        Total number of configuration evaluations, including the initial
        per-index-type samples (the paper runs 200).
    abandon_window:
        Consecutive worst-ranked iterations before an index type is abandoned
        (the paper uses 10).
    candidate_pool_size:
        Candidates scored per recommendation.
    ehvi_samples:
        Monte-Carlo samples for the EHVI estimator.
    reference_scale:
        Reference-point scale of Eq. 4 (0.5 in the paper).
    use_successive_abandon:
        Ablation switch: ``False`` falls back to plain round robin.
    use_polling_surrogate:
        Ablation switch: ``False`` uses the native (raw-objective) surrogate.
    stale_noise_inflation:
        Observation-noise multiplier applied to ``bootstrap_history``
        observations when fitting the surrogate (1 = trust them like fresh
        observations).  Warm-started re-tuning after workload drift inflates
        this so stale knowledge acts as a soft prior that fresh measurements
        override wherever they disagree.
    seed:
        Seed for candidate generation and EHVI sampling.

    Examples
    --------
    >>> from repro import VDTunerSettings
    >>> settings = VDTunerSettings(num_iterations=25, ehvi_samples=32, seed=1)
    >>> settings.num_iterations
    25
    >>> VDTunerSettings(num_iterations=0)
    Traceback (most recent call last):
        ...
    ValueError: num_iterations must be >= 1
    """

    num_iterations: int = 200
    abandon_window: int = 10
    candidate_pool_size: int = 192
    ehvi_samples: int = 64
    reference_scale: float = 0.5
    use_successive_abandon: bool = True
    use_polling_surrogate: bool = True
    stale_noise_inflation: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        if self.abandon_window < 1:
            raise ValueError("abandon_window must be >= 1")
        if self.stale_noise_inflation < 1.0:
            raise ValueError("stale_noise_inflation must be >= 1")


@dataclass
class TuningReport:
    """Everything a tuning run produced.

    Attributes
    ----------
    history:
        All observations in evaluation order.
    score_trace:
        Per-iteration index-type scores (Figure 9 data).
    abandoned:
        Index type → iteration at which it was abandoned.
    objective:
        The objective specification that was optimized.
    settings:
        The tuner settings used.
    recommendation_seconds:
        Wall-clock seconds spent inside the recommendation machinery
        (Table VI's "configuration recommendation" column).
    replay_seconds:
        Simulated seconds spent replaying workloads (Table VI's "workload
        replay" column).
    """

    history: ObservationHistory
    score_trace: list[dict[str, float]] = field(default_factory=list)
    abandoned: dict[str, int] = field(default_factory=dict)
    objective: ObjectiveSpec = field(default_factory=ObjectiveSpec)
    settings: VDTunerSettings = field(default_factory=VDTunerSettings)
    recommendation_seconds: float = 0.0
    replay_seconds: float = 0.0

    def best_observation(self, *, recall_floor: float = 0.0) -> Observation | None:
        """Best observation by the speed objective subject to a recall floor."""
        floor = recall_floor
        if self.objective.constrained:
            floor = max(floor, float(self.objective.recall_constraint))
        return self.history.best(recall_floor=floor)

    def best_configuration(self, *, recall_floor: float = 0.0) -> dict[str, Any] | None:
        """Configuration of :meth:`best_observation`."""
        best = self.best_observation(recall_floor=recall_floor)
        return None if best is None else dict(best.configuration)

    def parameter_trace(self, names: list[str] | None = None) -> dict[str, list[Any]]:
        """Per-iteration values of selected parameters (Figure 11 data)."""
        if not len(self.history):
            return {}
        names = names or list(self.history[0].configuration.keys())
        trace: dict[str, list[Any]] = {name: [] for name in names}
        for observation in self.history:
            for name in names:
                trace[name].append(observation.configuration.get(name))
        return trace


class VDTuner:
    """The VDTuner auto-configuration framework.

    Examples
    --------
    >>> from repro import VDMSTuningEnvironment, VDTuner, VDTunerSettings
    >>> environment = VDMSTuningEnvironment("glove-small", seed=0)
    >>> settings = VDTunerSettings(num_iterations=10, candidate_pool_size=32, ehvi_samples=8)
    >>> report = VDTuner(environment, settings=settings).run()
    >>> len(report.history)
    10
    >>> best = report.best_observation()
    >>> best.speed > 0
    True

    Batch-parallel mode suggests joint q-EHVI batches and evaluates them on a
    worker pool (see :mod:`repro.parallel`)::

        from repro import BatchEvaluator
        evaluator = BatchEvaluator.from_environment(environment, num_workers=4)
        report = VDTuner(environment, settings=settings).run(
            batch_size=4, evaluator=evaluator
        )
    """

    def __init__(
        self,
        environment: VDMSTuningEnvironment,
        settings: VDTunerSettings | None = None,
        objective: ObjectiveSpec | None = None,
        *,
        space: ConfigurationSpace | None = None,
        bootstrap_history: ObservationHistory | None = None,
    ) -> None:
        self.environment = environment
        self.settings = settings or VDTunerSettings()
        self.objective = objective or ObjectiveSpec()
        self.space = space or environment.space
        self.bootstrap_history = bootstrap_history
        self._rng = np.random.default_rng(self.settings.seed)

        index_parameter = self.space["index_type"]
        self.index_types = [
            choice for choice in index_parameter.choices if not str(choice).endswith("_")
        ]
        if not self.index_types:
            raise ValueError("the configuration space exposes no index types")

        policy_class = SuccessiveAbandonPolicy if self.settings.use_successive_abandon else RoundRobinPolicy
        self._policy = policy_class(
            index_types=list(self.index_types),
            window=self.settings.abandon_window,
            reference_scale=self.settings.reference_scale,
        )
        surrogate_class = PollingSurrogate if self.settings.use_polling_surrogate else NativeSurrogate
        self._surrogate = surrogate_class(
            self.space, constrained=self.objective.constrained, seed=self.settings.seed
        )
        self._recommender = ConfigurationRecommender(
            space=self.space,
            candidate_pool_size=self.settings.candidate_pool_size,
            ehvi_samples=self.settings.ehvi_samples,
            reference_scale=self.settings.reference_scale,
        )
        self._history = ObservationHistory()
        self._recommendation_seconds = 0.0

    # -- bookkeeping -------------------------------------------------------------------

    @property
    def history(self) -> ObservationHistory:
        """Observations of the current run."""
        return self._history

    def _record(self, configuration: Configuration, result: EvaluationResult) -> Observation:
        observation = Observation.from_result(
            len(self._history) + 1, configuration.to_dict(), result, self.objective
        )
        self._history.add(observation)
        return observation

    def _training_history(self) -> ObservationHistory:
        """History used to fit the surrogate (bootstrapping included)."""
        if self.bootstrap_history is None or len(self.bootstrap_history) == 0:
            return self._history
        combined = ObservationHistory(self.bootstrap_history.observations)
        combined.extend(self._history.observations)
        return combined

    def _training_noise_scale(self, training: ObservationHistory) -> np.ndarray | None:
        """Per-observation noise multipliers for the surrogate fit.

        Bootstrap observations (which lead the combined training history) get
        ``stale_noise_inflation``; the current run's observations get 1.
        """
        inflation = float(self.settings.stale_noise_inflation)
        if (
            inflation == 1.0
            or self.bootstrap_history is None
            or len(self.bootstrap_history) == 0
            or len(training) == len(self._history)
        ):
            return None
        num_stale = len(training) - len(self._history)
        scale = np.ones(len(training))
        scale[:num_stale] = inflation
        return scale

    # -- Algorithm 1 ----------------------------------------------------------------------

    def _default_configuration_for(self, index_type: str) -> Configuration:
        defaults = {p.name: p.default for p in self.space.parameters}
        defaults["index_type"] = index_type
        return self.space.configuration(defaults)

    def _needs_initial_sampling(self) -> bool:
        """Whether the per-index-type default sweep still has to run.

        A tuner warm-started from a previous run's history (``bootstrap_history``)
        already knows how every index type behaves, so it skips straight to
        model-based suggestions instead of re-spending budget on the defaults —
        this is what makes warm re-tuning after workload drift recover faster
        than a cold restart.
        """
        if len(self._history) > 0:
            return False
        return self.bootstrap_history is None or len(self.bootstrap_history) == 0

    def _initial_sampling(self, budget: int) -> None:
        """Evaluate every index type's default configuration (lines 1-5)."""
        for index_type in self.index_types:
            if len(self._history) >= budget:
                break
            configuration = self._default_configuration_for(index_type)
            result = self.environment.evaluate(configuration)
            self._record(configuration, result)

    def suggest_batch(self, q: int = 1) -> list[Configuration]:
        """Suggest ``q`` configurations to evaluate concurrently (q-EHVI batch).

        The batch is built sequential-greedily (Daulton et al.'s qEHVI with
        the "Kriging believer" fantasy): the first point is the regular EHVI
        recommendation of Algorithm 1; each subsequent point is recommended by
        a surrogate conditioned on the *predicted* outcomes of the points
        already in the batch (a cheap rank-one posterior update, see
        :meth:`repro.core.surrogate.PollingSurrogate.fantasized`), which both
        shrinks uncertainty near chosen points and grows the fantasy front —
        jointly steering the batch toward diverse, complementary
        configurations.  Index types are polled round-robin across the batch,
        so a batch spans several index types.

        With ``q == 1`` this is exactly one pass of the sequential tuning
        loop's recommendation step (lines 7-21 of Algorithm 1).  Before any
        observation exists, the suggestions are the index types' default
        configurations, mirroring the initial sampling phase.

        Returns a list of ``q`` distinct configurations (the suggested batch
        is not evaluated or recorded; pair with
        :meth:`repro.workloads.environment.VDMSTuningEnvironment.evaluate_batch`).
        """
        q = int(q)
        if q < 1:
            raise ValueError("q must be >= 1")
        training = self._training_history()
        if len(training) == 0:
            return [
                self._default_configuration_for(self.index_types[j % len(self.index_types)])
                for j in range(q)
            ]

        # Index types the knowledge base has never observed are sampled at
        # their defaults first — the incremental continuation of the initial
        # sampling phase (lines 1-5), so driving the tuner one suggest_batch
        # call at a time (as the online loop does) still sweeps every index
        # type before going model-based.  A bootstrapped (warm-started) tuner
        # already knows every index type and skips straight past this.
        observed = {observation.index_type for observation in training}
        missing = [t for t in self.index_types if t not in observed]
        batch: list[Configuration] = [
            self._default_configuration_for(index_type) for index_type in missing[:q]
        ]
        if len(batch) == q:
            return batch

        self._policy.update_scores(training, len(self._history) + 1)
        noise_scale = self._training_noise_scale(training)
        front_mask = None
        recommend_history = training
        if noise_scale is not None:
            # Down-weighted (stale) observations shape the GP but do not count
            # as achieved outcomes: a stale front the drifted workload cannot
            # reach would otherwise zero the acquisition signal (EHVI against
            # an unreachable front; constrained EI against an unreachable
            # best feasible speed) for every reachable candidate.  The
            # recommender sees the matching fresh-only history, so its
            # feasibility bookkeeping stays row-aligned with the front and
            # stale configurations remain re-suggestible after drift.
            front_mask = noise_scale == 1.0
            recommend_history = ObservationHistory(
                [o for o, keep in zip(training, front_mask) if keep]
            )
        self._surrogate.fit(
            training,
            index_types=list(self.index_types),
            noise_scale=noise_scale,
            front_mask=front_mask,
        )
        surrogate = self._surrogate.fantasized(batch) if batch else self._surrogate
        for j in range(len(batch), q):
            index_type = self._policy.next_index_type()
            configuration = self._recommender.recommend(
                surrogate,
                recommend_history,
                index_type,
                self.objective,
                self._rng,
                exclude=batch,
            )
            batch.append(configuration)
            if j + 1 < q:
                surrogate = surrogate.fantasized([configuration])
        return batch

    def _tuning_iteration(self, iteration: int) -> Observation:
        """One pass of the while-loop body (lines 7-22)."""
        del iteration  # the history length drives the bookkeeping
        started = time.perf_counter()
        [configuration] = self.suggest_batch(1)
        elapsed = time.perf_counter() - started
        self._recommendation_seconds += elapsed
        self.environment.charge_recommendation_time(elapsed)

        result = self.environment.evaluate(configuration)
        return self._record(configuration, result)

    def _run_batched(self, budget: int, batch_size: int, evaluator) -> None:
        """Batched tuning loop: suggest q points, evaluate them concurrently."""
        if self._needs_initial_sampling():
            # The initial per-index-type defaults have no sequential dependency
            # at all, so the whole phase is one pooled batch: the worker pool
            # packs the heterogeneous replays far better than fixed-size
            # chunks would.
            pending = [self._default_configuration_for(t) for t in self.index_types][:budget]
            results = self.environment.evaluate_batch(pending, evaluator=evaluator)
            for configuration, result in zip(pending, results):
                self._record(configuration, result)
        while len(self._history) < budget:
            q = min(batch_size, budget - len(self._history))
            started = time.perf_counter()
            batch = self.suggest_batch(q)
            elapsed = time.perf_counter() - started
            self._recommendation_seconds += elapsed
            self.environment.charge_recommendation_time(elapsed)
            results = self.environment.evaluate_batch(batch, evaluator=evaluator)
            for configuration, result in zip(batch, results):
                self._record(configuration, result)

    def run(
        self,
        num_iterations: int | None = None,
        *,
        batch_size: int = 1,
        evaluator=None,
    ) -> TuningReport:
        """Run the tuning loop and return the report.

        With the default ``batch_size=1`` and no ``evaluator`` this is the
        paper's strictly sequential Algorithm 1.  With ``batch_size=q > 1``
        the loop suggests joint q-EHVI batches (:meth:`suggest_batch`) and
        evaluates each batch concurrently through
        :meth:`~repro.workloads.environment.VDMSTuningEnvironment.evaluate_batch`,
        optionally on a :class:`repro.parallel.BatchEvaluator` worker pool —
        the total evaluation budget is unchanged, only the wall-clock shrinks.
        """
        budget = int(num_iterations or self.settings.num_iterations)
        batch_size = max(1, int(batch_size))
        if batch_size == 1 and evaluator is None:
            if self._needs_initial_sampling():
                self._initial_sampling(budget)
            while len(self._history) < budget:
                self._tuning_iteration(len(self._history) + 1)
        else:
            self._run_batched(budget, batch_size, evaluator)
        return TuningReport(
            history=self._history,
            score_trace=self._policy.score_trace,
            abandoned=self._policy.abandoned,
            objective=self.objective,
            settings=self.settings,
            recommendation_seconds=self._recommendation_seconds,
            replay_seconds=self.environment.elapsed_replay_seconds,
        )
