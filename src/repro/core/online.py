"""Online continuous tuning under workload drift.

The offline tuners assume a frozen workload: tune once, deploy the best
configuration, done.  :class:`OnlineTuner` runs the deployment story instead —
an alternation of two modes over a (possibly drifting) environment:

``tune``
    Spend a bounded re-tuning budget suggesting and evaluating configurations
    with any registered tuner (VDTuner or a baseline), optionally in q-EHVI
    batches on a :class:`repro.parallel.BatchEvaluator` worker pool.

``serve``
    Deploy the incumbent (best known) configuration, re-measuring it every
    step, and feed the observed ``(speed, recall)`` to a
    :class:`~repro.core.drift.CusumDriftDetector`.  When the detector fires,
    re-enter ``tune``.

Re-tuning is **warm-started**: the knowledge base carries over, with stale
observations decayed by :func:`decay_history` (the most recent observations
are kept verbatim, older ones survive only if they are Pareto-optimal), and —
for VDTuner — the decayed history is passed as ``bootstrap_history`` so the
re-tune skips the per-index-type default sweep and resumes model-based
suggestions immediately.  ``warm_start=False`` gives the cold-restart
baseline the drift benchmarks compare against.

The per-step log (:class:`StepRecord`) is phase-aware, so the
:class:`OnlineReport` can compute per-phase Pareto fronts, hypervolumes and
the *time to recover* — how many evaluations after a drift event it took to
get back within ``recovery_fraction`` of the phase's best service score
(speed x recall).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.bo.pareto import hypervolume_2d, pareto_front
from repro.core.drift import CusumDriftDetector
from repro.core.history import Observation, ObservationHistory
from repro.core.objectives import ObjectiveSpec
from repro.core.tuner import VDTuner, VDTunerSettings
from repro.workloads.environment import VDMSTuningEnvironment
from repro.workloads.replay import EvaluationResult

__all__ = [
    "decay_history",
    "OnlineTunerSettings",
    "StepRecord",
    "OnlineReport",
    "OnlineTuner",
]


def decay_history(
    history: ObservationHistory,
    *,
    decay: float = 0.5,
    keep_recent: int = 8,
    dedupe: bool = True,
) -> ObservationHistory:
    """Shrink a history for warm re-tuning by decaying stale observations.

    With ``dedupe`` (default), repeated measurements of the same
    configuration collapse to the latest one first — the online loop's
    serving mode re-measures the incumbent every step, and those duplicates
    would otherwise crowd every other configuration out of the recency
    window.  Keeps (in original order): the ``keep_recent`` most recent
    distinct observations, enough of the tail to retain a ``decay`` fraction
    of the history, and every successful non-dominated observation regardless
    of age — old Pareto points summarize what the space *could* do and remain
    the cheapest prior available, while old dominated points mostly encode
    the stale workload.

    Examples
    --------
    >>> from repro.core.online import decay_history
    >>> from repro.core.history import ObservationHistory
    >>> decayed = decay_history(ObservationHistory(), decay=0.5)
    >>> len(decayed)
    0
    """
    if not 0.0 <= decay <= 1.0:
        raise ValueError("decay must lie in [0, 1]")
    if keep_recent < 0:
        raise ValueError("keep_recent must be >= 0")
    observations = history.observations
    if dedupe and observations:
        last_seen: dict[tuple, int] = {}
        for index, observation in enumerate(observations):
            key = tuple(sorted((k, str(v)) for k, v in observation.configuration.items()))
            last_seen[key] = index
        keep_positions = sorted(last_seen.values())
        observations = [observations[i] for i in keep_positions]
    count = len(observations)
    if count == 0:
        return ObservationHistory()
    target = max(int(keep_recent), int(math.ceil(count * decay)))
    keep = set(range(max(0, count - target), count))

    successful = [(i, o) for i, o in enumerate(observations) if not o.failed]
    if successful:
        values = np.array([o.objectives() for _, o in successful], dtype=float)
        front = pareto_front(values)
        for (index, _), value in zip(successful, values):
            if any(np.allclose(value, point) for point in front):
                keep.add(index)
    return ObservationHistory(observations[i] for i in sorted(keep))


@dataclass(frozen=True)
class OnlineTunerSettings:
    """Knobs of the online tuning loop.

    Attributes
    ----------
    total_steps:
        Total evaluation budget of the online run (tuning + serving).
    retune_budget:
        Evaluations spent per (re-)tuning episode before serving resumes.
    warm_start:
        Whether re-tuning bootstraps from the decayed knowledge base
        (``False`` = cold restart, the ablation baseline).
    history_decay, keep_recent:
        Passed to :func:`decay_history` when building the warm-start
        bootstrap.
    stale_noise_inflation:
        Observation-noise multiplier on the bootstrap observations during
        warm re-tuning — stale knowledge becomes a soft prior the fresh
        post-drift measurements override wherever they disagree (see
        :class:`~repro.core.tuner.VDTunerSettings`).
    detector_threshold, detector_drift, detector_warmup:
        Passed to :class:`~repro.core.drift.CusumDriftDetector`.
    recovery_fraction:
        A phase counts as recovered at the first evaluation whose service
        score reaches this fraction of the phase's best service score.
    batch_size:
        q-EHVI batch size used during tuning episodes (1 = sequential).
    seed:
        Base seed; each re-tuning episode derives its own tuner seed.

    Examples
    --------
    >>> from repro import OnlineTunerSettings
    >>> OnlineTunerSettings(total_steps=40, retune_budget=10).warm_start
    True
    >>> OnlineTunerSettings(total_steps=0)
    Traceback (most recent call last):
        ...
    ValueError: total_steps must be >= 1
    """

    total_steps: int = 60
    retune_budget: int = 14
    warm_start: bool = True
    history_decay: float = 0.5
    keep_recent: int = 8
    stale_noise_inflation: float = 16.0
    detector_threshold: float = 5.0
    detector_drift: float = 0.5
    detector_warmup: int = 3
    recovery_fraction: float = 0.9
    batch_size: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if self.retune_budget < 1:
            raise ValueError("retune_budget must be >= 1")
        if not 0.0 < self.recovery_fraction <= 1.0:
            raise ValueError("recovery_fraction must lie in (0, 1]")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass(frozen=True)
class StepRecord:
    """One evaluation of the online loop.

    Attributes
    ----------
    step:
        1-based online step (tuning and serving steps share the counter).
    phase:
        Workload-phase index the evaluation ran under.
    mode:
        ``"tune"`` (exploration during a re-tuning episode) or ``"serve"``
        (re-measurement of the deployed incumbent).
    index_type:
        Index type of the evaluated configuration.
    configuration:
        The evaluated configuration values.
    speed, recall:
        The objective pair observed at this step.
    failed:
        Whether the evaluation failed.
    replay_seconds:
        Cumulative simulated replay clock after this step.
    latency_p99_ms:
        The p99 per-query latency the replayer measured at this step, or
        ``None`` when unavailable — what latency SLOs are checked against.
    """

    step: int
    phase: int
    mode: str
    index_type: str
    configuration: dict[str, Any]
    speed: float
    recall: float
    failed: bool
    replay_seconds: float
    latency_p99_ms: float | None = None

    @property
    def score(self) -> float:
        """Service score: speed weighted by the recall actually delivered."""
        if self.failed:
            return 0.0
        return self.speed * self.recall


@dataclass
class OnlineReport:
    """Everything an online tuning run produced.

    Attributes
    ----------
    records:
        Per-step log in evaluation order.
    phase_log:
        ``(phase_index, first_step)`` pairs, from the environment.
    detections:
        Steps at which the drift detector fired.
    retunes:
        One entry per re-tuning episode: start step and warm/cold flag.
    history:
        Every observation (tuning and serving) as a knowledge base.
    settings, objective, tuner_name:
        The run's inputs, for reporting.
    """

    records: list[StepRecord]
    phase_log: list[tuple[int, int]]
    detections: list[int]
    retunes: list[dict[str, Any]]
    history: ObservationHistory
    settings: OnlineTunerSettings
    objective: ObjectiveSpec
    tuner_name: str = "vdtuner"

    # -- per-phase views -----------------------------------------------------------------

    def phases(self) -> list[int]:
        """Phase indices that actually received evaluations."""
        seen: list[int] = []
        for record in self.records:
            if record.phase not in seen:
                seen.append(record.phase)
        return seen

    def phase_records(self, phase: int) -> list[StepRecord]:
        """The records evaluated under one phase."""
        return [record for record in self.records if record.phase == phase]

    def phase_start_step(self, phase: int) -> int | None:
        """First online step of a phase, or ``None`` if it was never entered."""
        for index, start in self.phase_log:
            if index == phase:
                return start
        return None

    def phase_pareto_front(self, phase: int) -> np.ndarray:
        """Pareto front of the successful ``(speed, recall)`` pairs of a phase."""
        values = np.array(
            [(r.speed, r.recall) for r in self.phase_records(phase) if not r.failed],
            dtype=float,
        )
        if values.size == 0:
            return np.empty((0, 2), dtype=float)
        # Serving re-measures the incumbent many times; collapse duplicates.
        return pareto_front(np.unique(values, axis=0))

    def phase_hypervolume(self, phase: int) -> float:
        """Hypervolume of the phase's Pareto front (zero reference point)."""
        return hypervolume_2d(self.phase_pareto_front(phase), np.zeros(2))

    def phase_best(self, phase: int) -> StepRecord | None:
        """The phase record with the best service score."""
        candidates = [r for r in self.phase_records(phase) if not r.failed]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.score)

    def time_to_recover(self, phase: int, *, fraction: float | None = None) -> int | None:
        """Evaluations from phase start until the service score recovers.

        Recovery means reaching ``fraction`` (default: the settings'
        ``recovery_fraction``) of the best service score observed *within the
        phase* — the in-hindsight post-drift optimum, which makes warm and
        cold re-tuning directly comparable.  ``None`` when the phase saw no
        successful evaluation.
        """
        fraction = self.settings.recovery_fraction if fraction is None else float(fraction)
        records = self.phase_records(phase)
        best = self.phase_best(phase)
        if best is None or best.score <= 0.0:
            return None
        threshold = fraction * best.score
        for position, record in enumerate(records, start=1):
            if not record.failed and record.score >= threshold:
                return position
        return None

    def time_to_reach_score(self, phase: int, threshold: float) -> int | None:
        """Evaluations from phase start until the service score reaches ``threshold``.

        Unlike :meth:`time_to_recover` (which is relative to the run's *own*
        phase best), this takes an absolute score target, so two runs — e.g.
        warm vs cold re-tuning — can be compared against a common post-drift
        optimum.  ``None`` when the run never reaches the target in-phase.
        """
        for position, record in enumerate(self.phase_records(phase), start=1):
            if not record.failed and record.score >= threshold:
                return position
        return None

    def detection_delay(self, phase: int) -> int | None:
        """Steps between a phase's onset and the first detector alarm in it.

        ``None`` for the baseline phase and for phases with no alarm (either
        never detected, or the run ended first).
        """
        start = self.phase_start_step(phase)
        if start is None or phase == 0:
            return None
        next_starts = [s for i, s in self.phase_log if s > start]
        end = min(next_starts) if next_starts else self.settings.total_steps + 1
        for step in self.detections:
            if start <= step < end:
                return step - start + 1
        return None

    # -- serialization -------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """JSON-able summary: per-phase Pareto metrics and recovery times."""
        phase_summaries = []
        for phase in self.phases():
            best = self.phase_best(phase)
            phase_summaries.append(
                {
                    "phase": phase,
                    "start_step": self.phase_start_step(phase),
                    "evaluations": len(self.phase_records(phase)),
                    "pareto_front": [
                        [round(float(x), 6), round(float(y), 6)]
                        for x, y in self.phase_pareto_front(phase)
                    ],
                    "hypervolume": round(self.phase_hypervolume(phase), 6),
                    "best_score": round(best.score, 6) if best else None,
                    "best_index_type": best.index_type if best else None,
                    "time_to_recover": self.time_to_recover(phase),
                    "detection_delay": self.detection_delay(phase),
                }
            )
        return {
            "tuner": self.tuner_name,
            "total_steps": len(self.records),
            "warm_start": self.settings.warm_start,
            "detections": list(self.detections),
            "retunes": [dict(entry) for entry in self.retunes],
            "replay_seconds": round(self.records[-1].replay_seconds, 6) if self.records else 0.0,
            "phases": phase_summaries,
            "settings": asdict(self.settings),
        }


class OnlineTuner:
    """Continuous tune/serve loop with drift detection and warm re-tuning.

    Parameters
    ----------
    environment:
        The environment to tune online — typically a
        :class:`~repro.workloads.dynamic.DynamicTuningEnvironment` so the
        workload actually drifts, but any environment works (the loop then
        simply never re-tunes unless noise trips the detector).
    tuner:
        Registry name of the tuner driving each tuning episode (``"vdtuner"``
        or any baseline).
    settings:
        The online-loop knobs.
    objective:
        The objective specification shared by every episode.
    tuner_settings:
        VDTuner settings template for the episodes (iteration count is
        overridden by ``retune_budget``).
    evaluator:
        Optional :class:`repro.parallel.BatchEvaluator`; tuning episodes then
        evaluate their q-EHVI batches on the worker pool, and the evaluator
        follows the environment across drift events automatically.

    Examples
    --------
    >>> from repro import load_dataset, OnlineTuner, OnlineTunerSettings
    >>> from repro.workloads.dynamic import DynamicTuningEnvironment, DynamicWorkload
    >>> dynamic = DynamicWorkload(load_dataset("glove-small"))
    >>> environment = DynamicTuningEnvironment(dynamic, seed=0)
    >>> settings = OnlineTunerSettings(total_steps=4, retune_budget=3, seed=0)
    >>> report = OnlineTuner(environment, settings=settings).run()
    >>> len(report.records)
    4
    >>> {r.mode for r in report.records} == {"tune", "serve"}
    True
    """

    def __init__(
        self,
        environment: VDMSTuningEnvironment,
        *,
        tuner: str = "vdtuner",
        settings: OnlineTunerSettings | None = None,
        objective: ObjectiveSpec | None = None,
        tuner_settings: VDTunerSettings | None = None,
        evaluator=None,
    ) -> None:
        self.environment = environment
        self.tuner_name = tuner.lower()
        self.settings = settings or OnlineTunerSettings()
        self.objective = objective or ObjectiveSpec()
        self.tuner_settings = tuner_settings
        self.evaluator = evaluator
        self._episodes = 0
        #: The configuration most recently elected for serving (``None``
        #: until the first tuning episode completes).
        self.incumbent: dict[str, Any] | None = None
        self._records: list[StepRecord] = []
        self._knowledge = ObservationHistory()
        self._detections: list[int] = []
        self._retunes: list[dict[str, Any]] = []

    # -- episode plumbing ---------------------------------------------------------------

    def _episode_settings(self) -> VDTunerSettings:
        template = self.tuner_settings or VDTunerSettings()
        budget = self.settings.retune_budget
        return VDTunerSettings(
            num_iterations=budget,
            abandon_window=max(3, budget // 3),
            candidate_pool_size=template.candidate_pool_size,
            ehvi_samples=template.ehvi_samples,
            reference_scale=template.reference_scale,
            use_successive_abandon=template.use_successive_abandon,
            use_polling_surrogate=template.use_polling_surrogate,
            stale_noise_inflation=self.settings.stale_noise_inflation,
            seed=self.settings.seed + self._episodes,
        )

    def _new_tuner(self, bootstrap: ObservationHistory | None):
        """Build the tuner for one episode, warm-started when requested."""
        from repro.baselines import make_tuner  # local import: avoids a package cycle

        seed = self.settings.seed + self._episodes
        self._episodes += 1
        if self.tuner_name == "vdtuner":
            return VDTuner(
                self.environment,
                settings=self._episode_settings(),
                objective=self.objective,
                bootstrap_history=bootstrap,
            )
        tuner = make_tuner(self.tuner_name, self.environment, objective=self.objective, seed=seed)
        if bootstrap is not None and len(bootstrap) > 0:
            # Baselines have no bootstrap channel; seed their knowledge base
            # directly (the online loop never calls their run(), so the
            # injected observations do not consume episode budget).
            tuner.history.extend(bootstrap.observations)
        return tuner

    def _incumbent(self, episode: ObservationHistory) -> dict[str, Any]:
        """The configuration to serve after an episode.

        Only the episode's *fresh* observations are eligible: bootstrap
        observations carry pre-drift measurements and must not elect a
        configuration on stale numbers.
        """
        floor = float(self.objective.recall_constraint or 0.0)
        best = episode.best(recall_floor=floor) or episode.best()
        if best is not None:
            return dict(best.configuration)
        return self.environment.default_configuration().to_dict()

    def _revalidation_queue(self, bootstrap: ObservationHistory) -> list[dict[str, Any]]:
        """Stale Pareto configurations to re-measure first on a warm re-tune.

        The decayed history's non-dominated configurations are the best
        guesses for the post-drift optimum and the highest-value probes of
        how far the front moved, so the warm episode re-evaluates them before
        resuming model-based suggestions — if the old optimum still holds,
        recovery is immediate; if not, the surrogate gets fresh contrastive
        observations exactly where its knowledge was strongest.
        """
        limit = max(2, self.settings.retune_budget // 2)
        queue: list[dict[str, Any]] = []
        ranked = sorted(bootstrap.non_dominated(), key=lambda o: -o.speed * o.recall)
        for observation in ranked:
            configuration = dict(observation.configuration)
            if configuration not in queue:
                queue.append(configuration)
            if len(queue) >= limit:
                break
        return queue

    def _observe(
        self, step: int, configuration: dict[str, Any], result: EvaluationResult
    ) -> Observation:
        return Observation.from_result(step, configuration, result, self.objective)

    # -- the loop -------------------------------------------------------------------------

    def iterate(self):
        """Generator form of the online loop, yielding after every batch.

        Each ``next()`` advances the loop by one evaluation batch (one
        serving re-measurement, or up to ``batch_size`` tuning evaluations)
        and yields the list of fresh :class:`StepRecord` entries.  The loop
        state lives on the instance, so :meth:`build_report` is valid at any
        yield point — this is what lets a multi-tenant scheduler interleave
        many tenants' loops step by step under one shared evaluation budget
        (:class:`repro.core.multi_tenant.MultiTenantTuner`).
        """
        settings = self.settings
        detector = CusumDriftDetector(
            threshold=settings.detector_threshold,
            drift=settings.detector_drift,
            warmup=settings.detector_warmup,
        )
        records: list[StepRecord] = []
        knowledge = ObservationHistory()
        detections: list[int] = []
        retunes: list[dict[str, Any]] = [{"step": 1, "warm": False}]
        self._records = records
        self._knowledge = knowledge
        self._detections = detections
        self._retunes = retunes

        tuner = self._new_tuner(None)
        mode = "tune"
        tune_remaining = min(settings.retune_budget, settings.total_steps)
        incumbent: dict[str, Any] | None = None
        revalidation: list[dict[str, Any]] = []
        episode_start = 0
        step = 0

        def phase_index() -> int:
            phase = getattr(self.environment, "current_phase", None)
            return 0 if phase is None else phase.index

        def record_step(configuration: dict[str, Any], result: EvaluationResult) -> None:
            observation = self._observe(len(records) + 1, configuration, result)
            knowledge.add(observation)
            records.append(
                StepRecord(
                    step=len(records) + 1,
                    phase=phase_index(),
                    mode=mode,
                    index_type=observation.index_type,
                    configuration=dict(configuration),
                    speed=observation.speed,
                    recall=observation.recall,
                    failed=observation.failed,
                    replay_seconds=self.environment.elapsed_replay_seconds,
                    latency_p99_ms=(
                        float(result.breakdown["latency_p99_ms"])
                        if "latency_p99_ms" in getattr(result, "breakdown", {})
                        else None
                    ),
                )
            )

        space = self.environment.space
        while step < settings.total_steps:
            produced_from = len(records)
            if mode == "tune":
                q = min(settings.batch_size, tune_remaining, settings.total_steps - step)
                if revalidation:
                    # Warm re-tune opener: re-measure the stale Pareto
                    # configurations under the drifted workload before asking
                    # the surrogate for anything new.
                    batch = [space.configuration(v) for v in revalidation[:q]]
                    revalidation = revalidation[len(batch):]
                    q = len(batch)
                else:
                    batch = tuner.suggest_batch(q)
                if self.evaluator is not None:
                    self.evaluator.sync_with(self.environment)
                    results = self.environment.evaluate_batch(batch, evaluator=self.evaluator)
                elif q > 1:
                    results = self.environment.evaluate_batch(batch)
                else:
                    results = [self.environment.evaluate(batch[0])]
                for configuration, result in zip(batch, results):
                    record_step(configuration.to_dict(), result)
                    tuner._record(configuration, result)
                step += q
                tune_remaining -= q
                if tune_remaining <= 0:
                    episode = ObservationHistory(knowledge.observations[episode_start:])
                    incumbent = self._incumbent(episode)
                    self.incumbent = dict(incumbent)
                    revalidation = []
                    mode = "serve"
                    detector.reset()
            else:
                assert incumbent is not None
                result = self.environment.evaluate(incumbent)
                record_step(incumbent, result)
                step += 1
                speed, recall = self.objective.objective_values(result)
                if detector.update([speed, recall]):
                    detections.append(step)
                    if step >= settings.total_steps:
                        # The alarm is on record, but there is no budget left
                        # to act on it.
                        yield records[produced_from:]
                        continue
                    bootstrap: ObservationHistory | None = None
                    revalidation = []
                    if settings.warm_start:
                        bootstrap = decay_history(
                            knowledge,
                            decay=settings.history_decay,
                            keep_recent=settings.keep_recent,
                        )
                        revalidation = self._revalidation_queue(bootstrap)
                        # The queued configurations are re-observed immediately;
                        # keeping their stale twins in the bootstrap would feed
                        # the surrogate contradictory targets at the same point.
                        bootstrap = ObservationHistory(
                            o for o in bootstrap
                            if dict(o.configuration) not in revalidation
                        )
                    tuner = self._new_tuner(bootstrap)
                    episode_start = len(knowledge.observations)
                    retunes.append({"step": step + 1, "warm": settings.warm_start})
                    mode = "tune"
                    tune_remaining = settings.retune_budget
            yield records[produced_from:]

    def build_report(self) -> OnlineReport:
        """The report over everything evaluated so far (valid mid-run)."""
        return OnlineReport(
            records=list(self._records),
            phase_log=list(getattr(self.environment, "phase_log", [(0, 1)])),
            detections=list(self._detections),
            retunes=[dict(entry) for entry in self._retunes],
            history=self._knowledge,
            settings=self.settings,
            objective=self.objective,
            tuner_name=self.tuner_name,
        )

    def run(self) -> OnlineReport:
        """Run the online loop for ``total_steps`` evaluations."""
        for _ in self.iterate():
            pass
        return self.build_report()
