"""Index-type scoring and the successive-abandon budget allocator.

Section IV-D of the paper: every index type is scored by how much the
hypervolume of the observed Pareto front would shrink if that index type's
observations were removed (Eq. 5 / Eq. 6).  An index type that is ranked
worst for a full window of consecutive iterations is abandoned, concentrating
the remaining tuning budget on the promising index types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bo.pareto import hypervolume_2d
from repro.core.history import ObservationHistory

__all__ = ["score_index_types", "SuccessiveAbandonPolicy", "RoundRobinPolicy"]


def score_index_types(
    history: ObservationHistory,
    index_types: list[str],
    *,
    reference_scale: float = 0.5,
) -> dict[str, float]:
    """Hypervolume-influence score of every index type (Eq. 6).

    ``Score(t) = max_t' HV(r, Y \\ Y_t') - HV(r, Y \\ Y_t)`` where ``Y`` is the
    set of non-dominated observations, ``Y_t`` those belonging to index type
    ``t``, and ``r = reference_scale * y`` with ``y`` the balanced point of
    the whole front (Eq. 3 applied to ``Y``).

    Higher is better: removing a high-scoring index type would shrink the
    hypervolume a lot, so that index type contributes valuable configurations.
    """
    balanced = history.balanced_point()
    if balanced is None:
        return {index_type: 0.0 for index_type in index_types}
    reference = reference_scale * np.asarray(balanced, dtype=float)

    non_dominated = history.non_dominated()
    all_values = np.array([o.objectives() for o in non_dominated], dtype=float)
    reduced_volumes: dict[str, float] = {}
    for index_type in index_types:
        kept = np.array(
            [o.objectives() for o in non_dominated if o.index_type != index_type], dtype=float
        )
        reduced_volumes[index_type] = hypervolume_2d(kept, reference) if kept.size else 0.0
    if not reduced_volumes:
        return {}
    best_reduced = max(reduced_volumes.values())
    del all_values  # only the reduced fronts matter for the score
    return {index_type: best_reduced - volume for index_type, volume in reduced_volumes.items()}


@dataclass
class SuccessiveAbandonPolicy:
    """Round-robin polling with windowed successive abandonment.

    Parameters
    ----------
    index_types:
        The index types to allocate budget over, in polling order.
    window:
        Number of consecutive iterations an index type must be ranked worst
        before it is abandoned (the paper uses 10).
    min_remaining:
        Lower bound on how many index types stay in play (at least one).
    reference_scale:
        The scale of the hypervolume reference point used by the score.
    """

    index_types: list[str]
    window: int = 10
    min_remaining: int = 1
    reference_scale: float = 0.5
    _remaining: list[str] = field(init=False)
    _worst_streak: dict[str, int] = field(init=False)
    _cursor: int = field(default=0, init=False)
    _abandoned_at: dict[str, int] = field(init=False, default_factory=dict)
    _score_trace: list[dict[str, float]] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if not self.index_types:
            raise ValueError("need at least one index type")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        self.min_remaining = max(1, int(self.min_remaining))
        self._remaining = list(self.index_types)
        self._worst_streak = {index_type: 0 for index_type in self.index_types}

    # -- inspection --------------------------------------------------------------

    @property
    def remaining(self) -> list[str]:
        """Index types still receiving budget."""
        return list(self._remaining)

    @property
    def abandoned(self) -> dict[str, int]:
        """Map of abandoned index type to the iteration it was abandoned at."""
        return dict(self._abandoned_at)

    @property
    def score_trace(self) -> list[dict[str, float]]:
        """Score snapshots recorded by :meth:`update_scores` (Figure 9 data)."""
        return list(self._score_trace)

    # -- behaviour ------------------------------------------------------------------

    def update_scores(self, history: ObservationHistory, iteration: int) -> dict[str, float]:
        """Re-score the remaining index types and abandon the persistent worst.

        Returns the scores of the remaining index types (also appended to the
        score trace for later visualization).
        """
        scores = score_index_types(history, self._remaining, reference_scale=self.reference_scale)
        self._score_trace.append(dict(scores))
        if len(self._remaining) <= self.min_remaining or len(scores) <= 1:
            return scores
        worst = min(scores, key=scores.get)
        for index_type in self._remaining:
            if index_type == worst:
                self._worst_streak[index_type] += 1
            else:
                self._worst_streak[index_type] = 0
        if self._worst_streak[worst] >= self.window:
            self._remaining.remove(worst)
            self._abandoned_at[worst] = iteration
            self._worst_streak[worst] = 0
        return scores

    def next_index_type(self) -> str:
        """The next index type to poll (round robin over the remaining ones)."""
        if not self._remaining:
            raise RuntimeError("no index types remain")
        index_type = self._remaining[self._cursor % len(self._remaining)]
        self._cursor += 1
        return index_type


@dataclass
class RoundRobinPolicy(SuccessiveAbandonPolicy):
    """Plain round robin: the ablation baseline that never abandons anything."""

    def update_scores(self, history: ObservationHistory, iteration: int) -> dict[str, float]:
        scores = score_index_types(history, self._remaining, reference_scale=self.reference_scale)
        self._score_trace.append(dict(scores))
        return scores
