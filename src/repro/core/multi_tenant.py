"""SLO-constrained tuning for many tenants under one evaluation budget.

One server hosts many tenants, each with its own workload, drift behaviour
and :class:`~repro.serving.tenancy.TenantSLO`.  Tuning them is not N
independent offline runs: evaluations are the scarce resource (each one
replays a workload against a rebuilt collection), so the tenants share a
*budget* the way they share the serving worker pool — by weighted-fair
scheduling.

:class:`MultiTenantTuner` runs one :class:`~repro.core.online.OnlineTuner`
(with its own :class:`~repro.core.drift.CusumDriftDetector`) per tenant and
interleaves their ``iterate()`` generators by stride scheduling:

* each tenant carries a *pass* value advanced by ``1 / weight`` per
  evaluation it receives, and the scheduler always steps the eligible
  tenant with the smallest pass;
* a tenant whose SLO is already attained (its serving-mode incumbent
  measurement meets the recall floor and, when set, the p99 latency target)
  is de-prioritized — its pass advances ``attained_penalty`` times faster —
  so the shared budget concentrates on tenants still out of contract;
* a tenant whose loop finishes (its ``total_steps`` are spent) leaves the
  rotation.

Each tenant's objective comes from its SLO via
:meth:`~repro.serving.tenancy.TenantSLO.objective`: the recall floor
becomes the constrained-EHVI recall constraint (the paper's user-specific
recall preference), and a cost budget switches the speed metric to
queries-per-dollar.  This is exactly the machinery
``repro.core.preference`` exercises offline, promoted to a serving-time
product surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.objectives import ObjectiveSpec
from repro.core.online import OnlineReport, OnlineTuner, OnlineTunerSettings, StepRecord
from repro.serving.tenancy import TenantSLO
from repro.workloads.environment import VDMSTuningEnvironment

__all__ = ["MultiTenantReport", "MultiTenantTuner", "TenantTunerSpec"]


@dataclass(frozen=True)
class TenantTunerSpec:
    """One tenant's tuning inputs.

    Attributes
    ----------
    name:
        Tenant (collection) name.
    environment:
        The tenant's replayed-workload environment — typically a
        :class:`~repro.workloads.dynamic.DynamicTuningEnvironment` so its
        drift detector has something to detect.
    slo:
        The tenant's SLO; its recall floor becomes the tuner's constrained
        acquisition and its cost budget selects the QP$ objective.
    weight:
        Share of the joint evaluation budget relative to other tenants.
    tuner:
        Registry name of the per-episode tuner (``"vdtuner"`` default).
    settings:
        Per-tenant :class:`~repro.core.online.OnlineTunerSettings`;
        ``None`` uses the :class:`MultiTenantTuner`'s default settings.
    """

    name: str
    environment: VDMSTuningEnvironment
    slo: TenantSLO = field(default_factory=TenantSLO)
    weight: float = 1.0
    tuner: str = "vdtuner"
    settings: OnlineTunerSettings | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not float(self.weight) > 0.0:
            raise ValueError("tenant weight must be positive")


class _TenantLoop:
    """One tenant's tuner, its generator and its scheduling state."""

    def __init__(self, spec: TenantTunerSpec, tuner: OnlineTuner) -> None:
        self.spec = spec
        self.tuner = tuner
        self.generator: Iterator[list[StepRecord]] = tuner.iterate()
        self.pass_value = 0.0
        self.evaluations = 0
        self.exhausted = False
        self.last_serve_record: StepRecord | None = None

    @property
    def attained(self) -> bool:
        """Whether the latest incumbent measurement meets the tenant's SLO."""
        record = self.last_serve_record
        if record is None or record.failed:
            return False
        return self.spec.slo.attained_by(record.recall, record.latency_p99_ms)


@dataclass
class MultiTenantReport:
    """Everything a multi-tenant tuning run produced.

    Attributes
    ----------
    reports:
        Per-tenant :class:`~repro.core.online.OnlineReport`, keyed by name.
    incumbents:
        Per-tenant deployed configuration (``None`` when a tenant never
        finished a tuning episode).
    attained:
        Per-tenant SLO attainment at the end of the run.
    evaluations:
        Per-tenant evaluations consumed from the shared budget.
    budget_total, budget_used:
        The shared evaluation budget and what the run consumed.
    """

    reports: dict[str, OnlineReport]
    incumbents: dict[str, dict[str, Any] | None]
    attained: dict[str, bool]
    evaluations: dict[str, int]
    budget_total: int
    budget_used: int

    def summary(self) -> dict[str, Any]:
        """JSON-able summary, one entry per tenant plus the budget ledger."""
        tenants = {}
        for name, report in self.reports.items():
            records = report.records
            last = records[-1] if records else None
            tenants[name] = {
                "evaluations": self.evaluations[name],
                "attained": self.attained[name],
                "incumbent": self.incumbents[name],
                "detections": list(report.detections),
                "retunes": len(report.retunes),
                "final_recall": round(last.recall, 6) if last else None,
                "final_speed": round(last.speed, 6) if last else None,
            }
        return {
            "budget": {"total": self.budget_total, "used": self.budget_used},
            "tenants": tenants,
        }


class MultiTenantTuner:
    """Weighted-fair interleaving of per-tenant online tuning loops.

    Parameters
    ----------
    specs:
        The tenants to tune.  Names must be unique.
    budget:
        Shared evaluation budget across all tenants; ``None`` lets every
        tenant run its own ``total_steps`` to completion (the budget is then
        their sum).
    settings:
        Default :class:`~repro.core.online.OnlineTunerSettings` for tenants
        whose spec does not carry its own.
    attained_penalty:
        How much faster an SLO-attained tenant's pass advances (i.e. how
        strongly the scheduler redirects budget to tenants still out of
        contract).  ``1.0`` disables the redirection.

    Examples
    --------
    >>> from repro import load_dataset, OnlineTunerSettings
    >>> from repro.core.multi_tenant import MultiTenantTuner, TenantTunerSpec
    >>> from repro.serving.tenancy import TenantSLO
    >>> from repro.workloads.environment import VDMSTuningEnvironment
    >>> dataset = load_dataset("glove-small")
    >>> spec = TenantTunerSpec(
    ...     name="docs",
    ...     environment=VDMSTuningEnvironment(dataset, seed=0),
    ...     slo=TenantSLO(recall_floor=0.5),
    ...     settings=OnlineTunerSettings(total_steps=4, retune_budget=3, seed=0),
    ... )
    >>> report = MultiTenantTuner([spec]).run()
    >>> report.evaluations["docs"]
    4
    """

    def __init__(
        self,
        specs: list[TenantTunerSpec],
        *,
        budget: int | None = None,
        settings: OnlineTunerSettings | None = None,
        attained_penalty: float = 4.0,
    ) -> None:
        if not specs:
            raise ValueError("at least one tenant spec is required")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        if budget is not None and int(budget) < 1:
            raise ValueError("budget must be >= 1 when set")
        if not float(attained_penalty) >= 1.0:
            raise ValueError("attained_penalty must be >= 1.0")
        self.specs = list(specs)
        self.default_settings = settings or OnlineTunerSettings()
        self.attained_penalty = float(attained_penalty)
        self._loops: dict[str, _TenantLoop] = {}
        for spec in self.specs:
            tenant_settings = spec.settings or self.default_settings
            tuner = OnlineTuner(
                spec.environment,
                tuner=spec.tuner,
                settings=tenant_settings,
                objective=spec.slo.objective(),
            )
            self._loops[spec.name] = _TenantLoop(spec, tuner)
        self.budget = (
            int(budget)
            if budget is not None
            else sum(
                (spec.settings or self.default_settings).total_steps for spec in self.specs
            )
        )
        self.budget_used = 0

    # -- scheduling ---------------------------------------------------------------

    def objective_for(self, name: str) -> ObjectiveSpec:
        """The objective a tenant's loop runs under (from its SLO)."""
        return self._loops[name].tuner.objective

    def _pick(self) -> _TenantLoop | None:
        """The eligible tenant with the smallest stride pass (name tie-break)."""
        best: _TenantLoop | None = None
        best_key: tuple[float, str] | None = None
        for name in sorted(self._loops):
            loop = self._loops[name]
            if loop.exhausted:
                continue
            key = (loop.pass_value, name)
            if best_key is None or key < best_key:
                best_key = key
                best = loop
        return best

    def step(self) -> list[StepRecord]:
        """Advance the scheduled tenant's loop by one batch.

        Returns the fresh records (empty when every loop is exhausted or
        the budget is spent).  Charges the shared budget by the number of
        evaluations the batch actually performed.
        """
        if self.budget_used >= self.budget:
            return []
        loop = self._pick()
        if loop is None:
            return []
        try:
            batch = next(loop.generator)
        except StopIteration:
            loop.exhausted = True
            return self.step()
        cost = len(batch)
        loop.evaluations += cost
        self.budget_used += cost
        for record in batch:
            if record.mode == "serve":
                loop.last_serve_record = record
        # Stride accounting: the pass advances per evaluation received, and
        # an SLO-attained tenant pays a premium so the remaining budget
        # flows to tenants still missing their contract.
        rate = self.attained_penalty if loop.attained else 1.0
        loop.pass_value += rate * max(1, cost) / float(loop.spec.weight)
        return batch

    def run(self) -> MultiTenantReport:
        """Drive every tenant loop until budget or loops are exhausted."""
        while True:
            if self.budget_used >= self.budget:
                break
            if not self.step() and all(l.exhausted for l in self._loops.values()):
                break
        return self.build_report()

    def build_report(self) -> MultiTenantReport:
        """The joint report over everything evaluated so far."""
        return MultiTenantReport(
            reports={name: loop.tuner.build_report() for name, loop in self._loops.items()},
            incumbents={
                name: (dict(loop.tuner.incumbent) if loop.tuner.incumbent else None)
                for name, loop in self._loops.items()
            },
            attained={name: loop.attained for name, loop in self._loops.items()},
            evaluations={name: loop.evaluations for name, loop in self._loops.items()},
            budget_total=self.budget,
            budget_used=self.budget_used,
        )
