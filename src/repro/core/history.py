"""Observation history: the tuner's knowledge base.

Every evaluated configuration is stored as an :class:`Observation`.  The
history provides the per-index-type views the polling surrogate, the scoring
function and the budget allocator need: non-dominated subsets, balanced base
points, objective matrices with failure replacement, and Pareto fronts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

import numpy as np

from repro.bo.pareto import is_non_dominated, pareto_front
from repro.workloads.replay import EvaluationResult

__all__ = ["Observation", "ObservationHistory"]


@dataclass(frozen=True)
class Observation:
    """One evaluated configuration.

    Attributes
    ----------
    iteration:
        1-based evaluation index within the tuning run.
    index_type:
        Index type of the evaluated configuration.
    configuration:
        Raw configuration values.
    result:
        The evaluation result returned by the environment.
    speed:
        The speed-like objective (QPS, or QP$ for cost-aware tuning).
    recall:
        The recall objective.
    """

    iteration: int
    index_type: str
    configuration: dict[str, Any]
    result: EvaluationResult
    speed: float
    recall: float

    @classmethod
    def from_result(
        cls,
        iteration: int,
        configuration: Any,
        result: EvaluationResult,
        objective,
    ) -> "Observation":
        """Build an observation from an evaluation under an objective spec.

        The single place the tuners, baselines and the online loop share for
        extracting the objective pair and normalizing the index-type name
        (placeholder choices carry a trailing underscore in the space).
        """
        values = dict(configuration)
        speed, recall = objective.objective_values(result)
        return cls(
            iteration=iteration,
            index_type=str(values.get("index_type", "AUTOINDEX")).rstrip("_"),
            configuration=values,
            result=result,
            speed=speed,
            recall=recall,
        )

    @property
    def failed(self) -> bool:
        """Whether the underlying evaluation failed."""
        return self.result.failed

    def objectives(self) -> np.ndarray:
        """The ``(speed, recall)`` pair as an array."""
        return np.array([self.speed, self.recall], dtype=float)


class ObservationHistory:
    """Ordered collection of observations with per-index-type views."""

    def __init__(self, observations: Iterable[Observation] | None = None) -> None:
        self._observations: list[Observation] = list(observations or [])

    # -- mutation ------------------------------------------------------------------

    def add(self, observation: Observation) -> None:
        """Append an observation."""
        self._observations.append(observation)

    def extend(self, observations: Iterable[Observation]) -> None:
        """Append several observations."""
        self._observations.extend(observations)

    # -- container protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self._observations)

    def __getitem__(self, index: int) -> Observation:
        return self._observations[index]

    @property
    def observations(self) -> list[Observation]:
        """All observations in evaluation order."""
        return list(self._observations)

    # -- views -------------------------------------------------------------------------

    def index_types(self) -> list[str]:
        """Index types present in the history, in first-seen order."""
        seen: list[str] = []
        for observation in self._observations:
            if observation.index_type not in seen:
                seen.append(observation.index_type)
        return seen

    def for_index_type(self, index_type: str) -> list[Observation]:
        """Observations evaluated with the given index type."""
        return [o for o in self._observations if o.index_type == index_type]

    def successful(self) -> list[Observation]:
        """Observations whose evaluation did not fail."""
        return [o for o in self._observations if not o.failed]

    def worst_objectives(self) -> np.ndarray:
        """The worst observed ``(speed, recall)``, used as failure replacement.

        The paper replaces the feedback of failed configurations with the
        worst values in history to avoid scaling problems; if every
        observation so far failed, zeros are used.
        """
        successful = self.successful()
        if not successful:
            return np.zeros(2, dtype=float)
        values = np.array([o.objectives() for o in successful], dtype=float)
        return values.min(axis=0)

    def objective_matrix(self, observations: Iterable[Observation] | None = None) -> np.ndarray:
        """Objective matrix ``(n, 2)`` with failure replacement applied."""
        observations = list(observations if observations is not None else self._observations)
        if not observations:
            return np.empty((0, 2), dtype=float)
        replacement = self.worst_objectives()
        rows = [replacement if o.failed else o.objectives() for o in observations]
        return np.vstack(rows)

    # -- Pareto machinery ---------------------------------------------------------------

    def non_dominated(self, index_type: str | None = None) -> list[Observation]:
        """Non-dominated successful observations (optionally per index type)."""
        pool = self.successful()
        if index_type is not None:
            pool = [o for o in pool if o.index_type == index_type]
        if not pool:
            return []
        values = np.array([o.objectives() for o in pool], dtype=float)
        mask = is_non_dominated(values)
        return [o for o, keep in zip(pool, mask) if keep]

    def pareto_front(self, index_type: str | None = None) -> np.ndarray:
        """Objective values of the non-dominated observations."""
        observations = self.non_dominated(index_type)
        if not observations:
            return np.empty((0, 2), dtype=float)
        return pareto_front(np.array([o.objectives() for o in observations], dtype=float))

    def balanced_point(self, index_type: str | None = None) -> np.ndarray | None:
        """The most balanced non-dominated objective pair (Eq. 3 of the paper).

        Among the non-dominated observations (of one index type, or of the
        whole history when ``index_type`` is ``None``), returns the
        ``(speed, recall)`` pair maximizing ``1 / |speed/speed_max -
        recall/recall_max|`` — the point closest to the diagonal of the
        normalized objective space.
        """
        observations = self.non_dominated(index_type)
        if not observations:
            return None
        values = np.array([o.objectives() for o in observations], dtype=float)
        maxima = values.max(axis=0)
        maxima[maxima <= 0] = 1.0
        imbalance = np.abs(values[:, 0] / maxima[0] - values[:, 1] / maxima[1])
        return values[int(np.argmin(imbalance))]

    def max_point(self, index_type: str | None = None) -> np.ndarray | None:
        """Per-objective maxima over successful observations (constraint-mode base)."""
        pool = self.successful()
        if index_type is not None:
            pool = [o for o in pool if o.index_type == index_type]
        if not pool:
            return None
        values = np.array([o.objectives() for o in pool], dtype=float)
        return values.max(axis=0)

    # -- selection helpers -----------------------------------------------------------------

    def best(self, *, recall_floor: float = 0.0) -> Observation | None:
        """Best successful observation by speed subject to a recall floor."""
        eligible = [o for o in self.successful() if o.recall >= recall_floor]
        if not eligible:
            return None
        return max(eligible, key=lambda o: o.speed)

    def best_balanced(self) -> Observation | None:
        """The observation realizing :meth:`balanced_point` over the whole history."""
        target = self.balanced_point()
        if target is None:
            return None
        for observation in self.successful():
            if np.allclose(observation.objectives(), target):
                return observation
        return None

    def contains_configuration(self, configuration: dict[str, Any]) -> bool:
        """Whether an identical configuration has already been evaluated."""
        items = {k: str(v) for k, v in configuration.items()}
        for observation in self._observations:
            if {k: str(v) for k, v in observation.configuration.items()} == items:
                return True
        return False
