"""Normalized performance improvement (NPI) — Eq. 2 and Eq. 3 of the paper.

The polling surrogate does not train on raw objective values: configurations
of different index types live on very different performance scales, and a GP
trained on the raw values would exploit the index types that happen to look
good early.  Instead, every observation is divided by a per-index-type *base
point*:

* in the unconstrained (two-objective) mode the base point is the most
  balanced non-dominated observation of that index type (Eq. 3);
* in the constrained (user-preference) mode the base point is the
  per-objective maximum achieved by that index type, which relaxes the
  "balance both objectives" pressure and focuses on maximizing speed inside
  the feasible region (Section IV-F).
"""

from __future__ import annotations

import numpy as np

from repro.core.history import ObservationHistory

__all__ = ["index_type_base_points", "normalize_objectives"]


def index_type_base_points(
    history: ObservationHistory,
    index_types: list[str],
    *,
    constrained: bool = False,
) -> dict[str, np.ndarray]:
    """Base performance point per index type (Eq. 3, or the constrained variant).

    Index types with no successful observation fall back to the global
    balanced point, and finally to ones, so normalization never divides by
    zero.
    """
    global_point = history.balanced_point() if not constrained else history.max_point()
    fallback = np.ones(2, dtype=float) if global_point is None else np.maximum(global_point, 1e-9)
    base_points: dict[str, np.ndarray] = {}
    for index_type in index_types:
        if constrained:
            point = history.max_point(index_type)
        else:
            point = history.balanced_point(index_type)
        if point is None:
            point = fallback
        base_points[index_type] = np.maximum(np.asarray(point, dtype=float), 1e-9)
    return base_points


def normalize_objectives(
    history: ObservationHistory,
    base_points: dict[str, np.ndarray],
) -> np.ndarray:
    """NPI-normalized objective matrix for every observation (Eq. 2).

    Failed observations receive the worst observed raw objectives before
    normalization, matching the failure handling described in the paper's
    evaluation setup.
    """
    if len(history) == 0:
        return np.empty((0, 2), dtype=float)
    raw = history.objective_matrix()
    normalized = np.empty_like(raw)
    fallback = np.ones(2, dtype=float)
    for row, observation in enumerate(history):
        base = base_points.get(observation.index_type, fallback)
        normalized[row] = raw[row] / base
    return normalized
