"""Surrogate models over the holistic configuration space.

Two variants, matching the paper's ablation (Figure 8b):

:class:`PollingSurrogate`
    VDTuner's surrogate.  Observations are NPI-normalized per index type
    (Eq. 2/3) before fitting one multi-output GP (two independent GPs, one
    per objective) over the *full* holistic encoding — the holistic
    model of Section IV-A.

:class:`NativeSurrogate`
    The ablation: the same holistic GPs fitted on raw objective values
    (standardized only globally), which is what a stock MOBO implementation
    would do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bo.gp import GaussianProcessRegressor
from repro.config import Configuration, ConfigurationSpace
from repro.core.history import ObservationHistory
from repro.core.npi import index_type_base_points, normalize_objectives

__all__ = ["SurrogatePrediction", "PollingSurrogate", "NativeSurrogate"]


@dataclass(frozen=True)
class SurrogatePrediction:
    """Posterior summary for a batch of candidate configurations.

    ``mean``/``std`` have shape ``(n, 2)``: column 0 is the speed-like
    objective, column 1 the recall objective, in the surrogate's own
    (possibly normalized) objective space.
    """

    mean: np.ndarray
    std: np.ndarray


class PollingSurrogate:
    """Holistic multi-output GP trained on NPI-normalized observations."""

    #: Whether objectives are normalized per index type before fitting.
    normalizes_per_index_type = True

    def __init__(
        self,
        space: ConfigurationSpace,
        *,
        constrained: bool = False,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.constrained = bool(constrained)
        self.seed = int(seed)
        self._speed_gp = GaussianProcessRegressor(seed=seed)
        self._recall_gp = GaussianProcessRegressor(seed=seed + 1)
        self._base_points: dict[str, np.ndarray] = {}
        self._normalized_objectives = np.empty((0, 2))
        self._fitted = False

    # -- fitting -------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called with at least one observation."""
        return self._fitted

    @property
    def base_points(self) -> dict[str, np.ndarray]:
        """Per-index-type base points used for normalization (Eq. 3)."""
        return dict(self._base_points)

    def _training_targets(self, history: ObservationHistory, index_types: list[str]) -> np.ndarray:
        self._base_points = index_type_base_points(history, index_types, constrained=self.constrained)
        return normalize_objectives(history, self._base_points)

    def fit(
        self,
        history: ObservationHistory,
        index_types: list[str] | None = None,
        *,
        noise_scale: np.ndarray | None = None,
        front_mask: np.ndarray | None = None,
    ) -> "PollingSurrogate":
        """Fit the two GPs on the (normalized) history.

        ``noise_scale`` optionally re-weights observations (one positive
        multiplier per observation, larger = trusted less); warm-started
        re-tuning uses it to keep stale pre-drift observations as soft priors
        (see :meth:`repro.bo.gp.GaussianProcessRegressor.fit`).

        ``front_mask`` optionally restricts which observations count as
        *achieved outcomes* (:meth:`observed_objectives`, the front EHVI
        improves upon).  Warm re-tuning masks the stale observations out:
        they still shape the GP posterior, but a pre-drift front that the
        drifted workload can no longer reach must not zero the acquisition
        signal for every reachable candidate.
        """
        if len(history) == 0:
            raise ValueError("cannot fit a surrogate on an empty history")
        index_types = index_types or history.index_types()
        targets = self._training_targets(history, index_types)
        encoded = self.space.encode_many([o.configuration for o in history])
        self._speed_gp.fit(encoded, targets[:, 0], noise_scale=noise_scale)
        self._recall_gp.fit(encoded, targets[:, 1], noise_scale=noise_scale)
        if front_mask is not None:
            front_mask = np.asarray(front_mask, dtype=bool).reshape(-1)
            if front_mask.shape[0] != targets.shape[0]:
                raise ValueError("front_mask must have one entry per observation")
            self._normalized_objectives = targets[front_mask]
        else:
            self._normalized_objectives = targets
        self._fitted = True
        return self

    # -- prediction ------------------------------------------------------------------

    def predict(self, configurations: list[Configuration] | np.ndarray) -> SurrogatePrediction:
        """Posterior mean/std for candidate configurations (surrogate objective space)."""
        if not self._fitted:
            raise RuntimeError("surrogate has not been fitted")
        if isinstance(configurations, np.ndarray):
            encoded = np.atleast_2d(configurations)
        else:
            encoded = self.space.encode_many(configurations)
        speed = self._speed_gp.predict(encoded)
        recall = self._recall_gp.predict(encoded)
        mean = np.column_stack([speed.mean, recall.mean])
        std = np.column_stack([speed.std, recall.std])
        return SurrogatePrediction(mean=mean, std=std)

    # -- fantasy conditioning -----------------------------------------------------------

    def fantasized(
        self,
        configurations: list[Configuration] | np.ndarray,
        outcomes: np.ndarray | None = None,
    ) -> "PollingSurrogate":
        """A copy of the surrogate conditioned on fantasy outcomes.

        Used by the sequential-greedy q-EHVI batch construction: after a
        candidate is selected, the surrogate is conditioned on the *predicted*
        outcome at that candidate (the "Kriging believer" fantasy, the default
        when ``outcomes`` is ``None``) so the next selection sees reduced
        uncertainty there and is pushed toward a diverse batch.  The fantasy
        outcomes are also appended to :meth:`observed_objectives`, shrinking
        the expected improvement of nearby candidates.  The conditioning is a
        cheap rank-one Cholesky update per objective GP
        (:meth:`repro.bo.gp.GaussianProcessRegressor.fantasized`); the
        original surrogate is left untouched.
        """
        if not self._fitted:
            raise RuntimeError("surrogate has not been fitted")
        if isinstance(configurations, np.ndarray):
            encoded = np.atleast_2d(configurations)
        else:
            encoded = self.space.encode_many(configurations)
        if outcomes is None:
            outcomes = self.predict(encoded).mean
        outcomes = np.atleast_2d(np.asarray(outcomes, dtype=float))
        if outcomes.shape != (encoded.shape[0], 2):
            raise ValueError("outcomes must have shape (len(configurations), 2)")

        clone = type(self)(self.space, constrained=self.constrained, seed=self.seed)
        clone._speed_gp = self._speed_gp.fantasized(encoded, outcomes[:, 0])
        clone._recall_gp = self._recall_gp.fantasized(encoded, outcomes[:, 1])
        clone._base_points = dict(self._base_points)
        clone._normalized_objectives = np.vstack([self._normalized_objectives, outcomes])
        clone._fitted = True
        return clone

    # -- objective-space geometry -------------------------------------------------------

    def observed_objectives(self) -> np.ndarray:
        """The training observations in the surrogate's objective space."""
        return np.array(self._normalized_objectives, copy=True)

    def reference_point(self, index_type: str, *, scale: float = 0.5) -> np.ndarray:
        """The EHVI reference point for a polled index type (Eq. 4).

        In normalized space the index type's base point maps to ``(1, 1)``,
        so the reference is simply ``scale * (1, 1)``.
        """
        del index_type  # every index type normalizes its base point to (1, 1)
        return np.full(2, float(scale))

    def normalize_threshold(self, index_type: str, recall_threshold: float) -> float:
        """Map a raw recall threshold into the surrogate's objective space."""
        base = self._base_points.get(index_type)
        if base is None or base[1] <= 0:
            return float(recall_threshold)
        return float(recall_threshold / base[1])


class NativeSurrogate(PollingSurrogate):
    """The ablation surrogate: holistic GPs on raw (un-normalized) objectives."""

    normalizes_per_index_type = False

    def _training_targets(self, history: ObservationHistory, index_types: list[str]) -> np.ndarray:
        # Keep the base points around (the reference point still needs the
        # balanced point of the raw front), but train on raw objectives.
        self._base_points = index_type_base_points(history, index_types, constrained=self.constrained)
        return history.objective_matrix()

    def reference_point(self, index_type: str, *, scale: float = 0.5) -> np.ndarray:
        base = self._base_points.get(index_type)
        if base is None:
            return np.full(2, float(scale))
        return float(scale) * np.asarray(base, dtype=float)

    def normalize_threshold(self, index_type: str, recall_threshold: float) -> float:
        return float(recall_threshold)
