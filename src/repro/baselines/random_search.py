"""Random search via Latin-hypercube sampling.

The paper's "Random" baseline: a space-filling design over the whole
holistic space (including the index type), evaluated in order.  It uses
no feedback at all, which is exactly why it falls behind the model-based
tuners.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineTuner, _register
from repro.bo.sampling import latin_hypercube
from repro.config import Configuration

__all__ = ["RandomSearchTuner"]


@_register
class RandomSearchTuner(BaselineTuner):
    """Latin-hypercube random search over the holistic space."""

    name = "random"

    #: Size of each pre-generated LHS block; a new block is drawn when the
    #: previous one is exhausted, so any number of iterations is supported.
    BLOCK_SIZE = 64

    def __init__(self, environment, objective=None, *, space=None, seed: int = 0) -> None:
        super().__init__(environment, objective, space=space, seed=seed)
        self._block: np.ndarray | None = None
        self._cursor = 0

    def _next_unit_vector(self) -> np.ndarray:
        if self._block is None or self._cursor >= self._block.shape[0]:
            self._block = latin_hypercube(self.BLOCK_SIZE, self.space.dimension, self.rng)
            self._cursor = 0
        vector = self._block[self._cursor]
        self._cursor += 1
        return vector

    def _suggest(self, iteration: int) -> Configuration:
        if iteration == 1:
            # Start from the default so the improvement-over-default metric is
            # always well defined for this baseline too.
            return self.space.default_configuration()
        return self.space.decode(self._next_unit_vector())
