"""OtterTune-style single-objective Gaussian-process tuning.

OtterTune (Van Aken et al., 2017) tunes DBMS knobs with Gaussian-process
regression over a scalar performance metric.  Following the paper's setup,
the scalar here is the weighted sum of max-normalized search speed and recall
(weight 0.5 each), the GP is initialized with 10 Latin-hypercube samples, and
each iteration maximizes expected improvement over a random candidate pool.
The single-objective reward is exactly why this baseline cannot trade the two
objectives off as well as the EHVI-based tuners.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineTuner, _register, weighted_sum_scores
from repro.bo.acquisition import expected_improvement
from repro.bo.gp import GaussianProcessRegressor
from repro.bo.sampling import latin_hypercube, uniform_samples
from repro.config import Configuration

__all__ = ["OtterTuneGP"]


@_register
class OtterTuneGP(BaselineTuner):
    """Single-objective GP optimization of the weighted-sum reward."""

    name = "ottertune"

    #: Number of Latin-hypercube initial samples (as in the paper's setup).
    NUM_INITIAL_SAMPLES = 10
    #: Candidate-pool size for acquisition maximization.
    CANDIDATE_POOL = 256
    #: Weight of the speed objective in the scalar reward.
    SPEED_WEIGHT = 0.5

    def __init__(self, environment, objective=None, *, space=None, seed: int = 0) -> None:
        super().__init__(environment, objective, space=space, seed=seed)
        self._initial_design = latin_hypercube(self.NUM_INITIAL_SAMPLES, self.space.dimension, self.rng)
        self._gp = GaussianProcessRegressor(seed=seed)

    def _suggest(self, iteration: int) -> Configuration:
        if iteration <= self.NUM_INITIAL_SAMPLES:
            if iteration == 1:
                return self.space.default_configuration()
            return self.space.decode(self._initial_design[iteration - 1])

        rewards = weighted_sum_scores(self.history, speed_weight=self.SPEED_WEIGHT)
        encoded = self.space.encode_many([o.configuration for o in self.history])
        self._gp.fit(encoded, rewards)

        candidates = uniform_samples(self.CANDIDATE_POOL, self.space.dimension, self.rng)
        prediction = self._gp.predict(candidates)
        acquisition = expected_improvement(prediction.mean, prediction.std, float(rewards.max()))
        best = int(np.argmax(acquisition))
        return self.space.decode(candidates[best])
