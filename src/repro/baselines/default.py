"""The no-tuning baseline: always the default configuration."""

from __future__ import annotations

from repro.baselines.base import BaselineTuner, _register
from repro.config import Configuration

__all__ = ["DefaultTuner"]


@_register
class DefaultTuner(BaselineTuner):
    """Evaluates the system default configuration on every iteration.

    Useful as the improvement baseline of Table IV: any tuner is compared
    against the performance this tuner reports.
    """

    name = "default"

    def _suggest(self, iteration: int) -> Configuration:
        return self.space.default_configuration()
