"""Baseline tuners the paper compares VDTuner against (Section V-A).

* :class:`DefaultTuner` — no tuning at all; evaluates the default configuration.
* :class:`RandomSearchTuner` — Latin-hypercube random search.
* :class:`OpenTunerSearch` — an AUC-bandit ensemble of numerical search
  techniques, in the spirit of OpenTuner, driven by a weighted-sum reward.
* :class:`OtterTuneGP` — single-objective Gaussian-process optimization of the
  weighted-sum objective, in the spirit of OtterTune.
* :class:`QEHVITuner` — plain multi-objective BO with the qEHVI acquisition
  and a zero reference point.

All baselines treat the index type as just another search dimension (the
paper's adaptation so they can tune multiple index types at once) and produce
the same :class:`~repro.core.tuner.TuningReport` as VDTuner, so the analysis
and benchmark code is tuner-agnostic.
"""

from repro.baselines.base import BaselineTuner, make_tuner, TUNER_REGISTRY
from repro.baselines.default import DefaultTuner
from repro.baselines.random_search import RandomSearchTuner
from repro.baselines.opentuner import OpenTunerSearch
from repro.baselines.ottertune import OtterTuneGP
from repro.baselines.qehvi import QEHVITuner

__all__ = [
    "BaselineTuner",
    "DefaultTuner",
    "OpenTunerSearch",
    "OtterTuneGP",
    "QEHVITuner",
    "RandomSearchTuner",
    "TUNER_REGISTRY",
    "make_tuner",
]
