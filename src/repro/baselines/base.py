"""Shared machinery for baseline tuners.

Every baseline follows the same observe/suggest loop and produces the same
:class:`~repro.core.tuner.TuningReport` as VDTuner.  Subclasses implement a
single method, :meth:`BaselineTuner._suggest`, returning the next
configuration to evaluate.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from repro.config import Configuration, ConfigurationSpace
from repro.core.history import Observation, ObservationHistory
from repro.core.objectives import ObjectiveSpec
from repro.core.tuner import TuningReport, VDTuner, VDTunerSettings
from repro.workloads.environment import VDMSTuningEnvironment
from repro.workloads.replay import EvaluationResult

__all__ = ["BaselineTuner", "TUNER_REGISTRY", "make_tuner", "weighted_sum_scores"]


def weighted_sum_scores(history: ObservationHistory, *, speed_weight: float = 0.5) -> np.ndarray:
    """Weighted sum of max-normalized objectives for every observation.

    This is the scalar reward the paper gives to the single-objective
    baselines (OpenTuner and OtterTune): ``w * speed/speed_max +
    (1 - w) * recall/recall_max``, with failed evaluations replaced by the
    worst observed values.
    """
    if len(history) == 0:
        return np.empty(0, dtype=float)
    values = history.objective_matrix()
    maxima = values.max(axis=0)
    maxima[maxima <= 0] = 1.0
    normalized = values / maxima
    return speed_weight * normalized[:, 0] + (1.0 - speed_weight) * normalized[:, 1]


class BaselineTuner(ABC):
    """Base class for the baseline tuners."""

    #: Registry/display name; overridden by subclasses.
    name: str = "baseline"

    def __init__(
        self,
        environment: VDMSTuningEnvironment,
        objective: ObjectiveSpec | None = None,
        *,
        space: ConfigurationSpace | None = None,
        seed: int = 0,
    ) -> None:
        self.environment = environment
        self.objective = objective or ObjectiveSpec()
        self.space = space or environment.space
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)
        self.history = ObservationHistory()
        self._recommendation_seconds = 0.0

    # -- bookkeeping ---------------------------------------------------------------

    def _record(self, configuration: Configuration, result: EvaluationResult) -> Observation:
        observation = Observation.from_result(
            len(self.history) + 1, configuration.to_dict(), result, self.objective
        )
        self.history.add(observation)
        return observation

    # -- the loop ---------------------------------------------------------------------

    @abstractmethod
    def _suggest(self, iteration: int) -> Configuration:
        """Return the next configuration to evaluate (1-based iteration index)."""

    def suggest_batch(self, q: int = 1) -> list[Configuration]:
        """Suggest ``q`` configurations to evaluate concurrently.

        The generic implementation calls :meth:`_suggest` ``q`` times with
        consecutive virtual iteration indices and replaces within-batch
        duplicates by uniform random configurations (model-based baselines
        are deterministic given the history, so repeated calls can collide).
        Baselines with a natural batch notion override this — see
        :meth:`repro.baselines.qehvi.QEHVITuner.suggest_batch` for the
        fantasy-conditioned greedy q-EHVI version.
        """
        q = int(q)
        if q < 1:
            raise ValueError("q must be >= 1")
        batch: list[Configuration] = []
        for offset in range(q):
            configuration = self._suggest(len(self.history) + offset + 1)
            attempts = 0
            while configuration in batch and attempts < 16:
                configuration = self.space.sample_configuration(self.rng)
                attempts += 1
            batch.append(configuration)
        return batch

    def run(self, num_iterations: int, *, batch_size: int = 1, evaluator=None) -> TuningReport:
        """Run the tuner for ``num_iterations`` evaluations.

        ``batch_size`` and ``evaluator`` mirror
        :meth:`repro.core.tuner.VDTuner.run`: with ``batch_size=q > 1`` the
        loop calls :meth:`suggest_batch` and evaluates each batch through
        :meth:`~repro.workloads.environment.VDMSTuningEnvironment.evaluate_batch`
        (concurrently when a :class:`repro.parallel.BatchEvaluator` is given),
        keeping the total evaluation budget identical.
        """
        num_iterations = int(num_iterations)
        batch_size = max(1, int(batch_size))
        while len(self.history) < num_iterations:
            q = min(batch_size, num_iterations - len(self.history))
            started = time.perf_counter()
            if q == 1 and evaluator is None:
                batch = [self._suggest(len(self.history) + 1)]
            else:
                batch = self.suggest_batch(q)
            elapsed = time.perf_counter() - started
            self._recommendation_seconds += elapsed
            self.environment.charge_recommendation_time(elapsed)
            if q == 1 and evaluator is None:
                results = [self.environment.evaluate(batch[0])]
            else:
                results = self.environment.evaluate_batch(batch, evaluator=evaluator)
            for configuration, result in zip(batch, results):
                self._record(configuration, result)
        return TuningReport(
            history=self.history,
            objective=self.objective,
            settings=VDTunerSettings(num_iterations=num_iterations),
            recommendation_seconds=self._recommendation_seconds,
            replay_seconds=self.environment.elapsed_replay_seconds,
        )


#: Registry of tuner names to constructors (VDTuner plus every baseline).
TUNER_REGISTRY: dict[str, type] = {}


def _register(cls):
    TUNER_REGISTRY[cls.name] = cls
    return cls


def make_tuner(
    name: str,
    environment: VDMSTuningEnvironment,
    *,
    objective: ObjectiveSpec | None = None,
    seed: int = 0,
    settings: VDTunerSettings | None = None,
):
    """Instantiate a tuner (VDTuner or a baseline) by registry name.

    The registry names follow the paper: ``"vdtuner"``, ``"random"``,
    ``"opentuner"``, ``"ottertune"``, ``"qehvi"``, ``"default"``.

    Examples
    --------
    >>> from repro import VDMSTuningEnvironment, make_tuner
    >>> environment = VDMSTuningEnvironment("glove-small", seed=0)
    >>> tuner = make_tuner("random", environment, seed=0)
    >>> report = tuner.run(5)
    >>> len(report.history)
    5
    >>> make_tuner("nope", environment)
    Traceback (most recent call last):
        ...
    KeyError: ...
    """
    key = name.lower()
    if key == "vdtuner":
        settings = settings or VDTunerSettings()
        if settings.seed != seed:
            settings = VDTunerSettings(
                num_iterations=settings.num_iterations,
                abandon_window=settings.abandon_window,
                candidate_pool_size=settings.candidate_pool_size,
                ehvi_samples=settings.ehvi_samples,
                reference_scale=settings.reference_scale,
                use_successive_abandon=settings.use_successive_abandon,
                use_polling_surrogate=settings.use_polling_surrogate,
                seed=seed,
            )
        return VDTuner(environment, settings=settings, objective=objective)
    if key not in TUNER_REGISTRY:
        raise KeyError(f"unknown tuner {name!r}; known: ['vdtuner'] + {sorted(TUNER_REGISTRY)}")
    return TUNER_REGISTRY[key](environment, objective, seed=seed)
