"""OpenTuner-style ensemble search.

OpenTuner (Ansel et al., 2014) explores a configuration space with a pool of
numerical search techniques coordinated by an AUC-bandit meta-technique; the
paper extends it to VDMS tuning by rewarding the weighted sum of normalized
search speed and recall.  This module re-implements that strategy:

* a pool of techniques — greedy hill climbing, pattern (coordinate) search
  with shrinking steps, a random-restart perturbator and plain uniform
  sampling;
* an AUC bandit that allocates iterations to techniques in proportion to how
  recently and how often they improved the best weighted-sum reward.

Each technique treats parameters independently (no model of parameter
interactions), which is precisely the weakness the paper attributes to
OpenTuner on the strongly interdependent VDMS space.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineTuner, _register, weighted_sum_scores
from repro.config import Configuration

__all__ = ["OpenTunerSearch"]


class _Technique:
    """One member of the search-technique pool."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.uses = 0
        self.improvements: list[int] = []

    def credit(self, improved: bool) -> None:
        """Record whether the last suggestion improved the best reward."""
        self.improvements.append(1 if improved else 0)
        if len(self.improvements) > 32:
            self.improvements.pop(0)

    def auc_score(self) -> float:
        """AUC-style credit: recent improvements weigh more."""
        if not self.improvements:
            return 1.0
        weights = np.arange(1, len(self.improvements) + 1, dtype=float)
        return float(np.dot(weights, self.improvements) / weights.sum())


@_register
class OpenTunerSearch(BaselineTuner):
    """AUC-bandit ensemble of numerical search techniques."""

    name = "opentuner"

    #: Exploration constant of the bandit.
    EXPLORATION = 0.3
    #: Initial step size (unit-hypercube units) of the local techniques.
    INITIAL_STEP = 0.25
    #: Step-size decay applied when pattern search fails to improve.
    STEP_DECAY = 0.85

    def __init__(self, environment, objective=None, *, space=None, seed: int = 0) -> None:
        super().__init__(environment, objective, space=space, seed=seed)
        self._techniques = [
            _Technique("hill_climb"),
            _Technique("pattern_search"),
            _Technique("random_restart"),
            _Technique("uniform"),
        ]
        self._step = self.INITIAL_STEP
        self._last_technique: _Technique | None = None
        self._last_best_reward = -np.inf
        self._pattern_dimension = 0
        self._pattern_direction = 1.0

    # -- bandit ------------------------------------------------------------------------

    def _select_technique(self) -> _Technique:
        scores = []
        total_uses = sum(t.uses for t in self._techniques) + 1
        for technique in self._techniques:
            exploration = self.EXPLORATION * np.sqrt(
                2.0 * np.log(total_uses) / (technique.uses + 1)
            )
            scores.append(technique.auc_score() + exploration)
        return self._techniques[int(np.argmax(scores))]

    def _credit_last(self) -> None:
        if self._last_technique is None or len(self.history) == 0:
            return
        rewards = weighted_sum_scores(self.history)
        best = float(rewards.max())
        improved = best > self._last_best_reward + 1e-12
        self._last_technique.credit(improved)
        if self._last_technique.name == "pattern_search" and not improved:
            self._step = max(0.02, self._step * self.STEP_DECAY)
        self._last_best_reward = max(self._last_best_reward, best)

    # -- technique proposals ---------------------------------------------------------------

    def _best_vector(self) -> np.ndarray:
        rewards = weighted_sum_scores(self.history)
        best_index = int(np.argmax(rewards))
        return self.space.encode(self.history[best_index].configuration)

    def _propose_hill_climb(self) -> np.ndarray:
        base = self._best_vector()
        dimension = int(self.rng.integers(0, self.space.dimension))
        base[dimension] = float(np.clip(base[dimension] + self.rng.normal(scale=self._step), 0.0, 1.0))
        return base

    def _propose_pattern_search(self) -> np.ndarray:
        base = self._best_vector()
        dimension = self._pattern_dimension % self.space.dimension
        base[dimension] = float(np.clip(base[dimension] + self._pattern_direction * self._step, 0.0, 1.0))
        # Alternate direction first, then move on to the next coordinate.
        if self._pattern_direction > 0:
            self._pattern_direction = -1.0
        else:
            self._pattern_direction = 1.0
            self._pattern_dimension += 1
        return base

    def _propose_random_restart(self) -> np.ndarray:
        base = self._best_vector()
        mask = self.rng.random(self.space.dimension) < 0.3
        base[mask] = self.rng.random(int(mask.sum()))
        return base

    def _propose_uniform(self) -> np.ndarray:
        return self.rng.random(self.space.dimension)

    # -- the suggest hook ---------------------------------------------------------------------

    def _suggest(self, iteration: int) -> Configuration:
        if iteration == 1:
            return self.space.default_configuration()
        if iteration == 2:
            # One uniform sample seeds the local techniques with an alternative.
            return self.space.decode(self._propose_uniform())
        self._credit_last()
        technique = self._select_technique()
        technique.uses += 1
        self._last_technique = technique
        proposal = {
            "hill_climb": self._propose_hill_climb,
            "pattern_search": self._propose_pattern_search,
            "random_restart": self._propose_random_restart,
            "uniform": self._propose_uniform,
        }[technique.name]()
        return self.space.decode(proposal)
