"""Plain multi-objective Bayesian optimization with the qEHVI acquisition.

This is the strongest baseline of the paper: two independent GPs over the
raw objectives, a Monte-Carlo EHVI acquisition, and — crucially — a *zero*
reference point (the library default the paper uses), no per-index-type
normalization and no budget allocation.  The missing pieces are exactly what
VDTuner adds on top.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineTuner, _register
from repro.bo.ehvi import greedy_qehvi_scores, monte_carlo_ehvi
from repro.bo.gp import GaussianProcessRegressor
from repro.bo.sampling import latin_hypercube, uniform_samples
from repro.config import Configuration

__all__ = ["QEHVITuner"]


@_register
class QEHVITuner(BaselineTuner):
    """Standard MOBO with Monte-Carlo EHVI and a zero reference point."""

    name = "qehvi"

    #: Number of Latin-hypercube initial samples (as in the paper's setup).
    NUM_INITIAL_SAMPLES = 10
    #: Candidate-pool size for acquisition maximization.
    CANDIDATE_POOL = 192
    #: Monte-Carlo samples for the EHVI estimator.
    EHVI_SAMPLES = 64

    def __init__(self, environment, objective=None, *, space=None, seed: int = 0) -> None:
        super().__init__(environment, objective, space=space, seed=seed)
        self._initial_design = latin_hypercube(self.NUM_INITIAL_SAMPLES, self.space.dimension, self.rng)
        self._speed_gp = GaussianProcessRegressor(seed=seed)
        self._recall_gp = GaussianProcessRegressor(seed=seed + 1)

    def _suggest(self, iteration: int) -> Configuration:
        if iteration <= self.NUM_INITIAL_SAMPLES:
            if iteration == 1:
                return self.space.default_configuration()
            return self.space.decode(self._initial_design[iteration - 1])

        objectives = self.history.objective_matrix()
        encoded = self.space.encode_many([o.configuration for o in self.history])
        self._speed_gp.fit(encoded, objectives[:, 0])
        self._recall_gp.fit(encoded, objectives[:, 1])

        candidates = uniform_samples(self.CANDIDATE_POOL, self.space.dimension, self.rng)
        speed = self._speed_gp.predict(candidates)
        recall = self._recall_gp.predict(candidates)
        means = np.column_stack([speed.mean, recall.mean])
        stds = np.column_stack([speed.std, recall.std])
        acquisition = monte_carlo_ehvi(
            means,
            stds,
            objectives,
            reference_point=np.zeros(2),
            num_samples=self.EHVI_SAMPLES,
            rng=self.rng,
        )
        best = int(np.argmax(acquisition))
        return self.space.decode(candidates[best])

    def suggest_batch(self, q: int = 1) -> list[Configuration]:
        """Greedy maximization of the joint Monte-Carlo q-EHVI.

        This is the full batch form of the tuner's namesake acquisition
        (Daulton et al., 2020): batch slot ``j+1`` is filled by the candidate
        maximizing the joint q-EHVI of the ``j`` already-chosen points plus
        the candidate (:func:`repro.bo.ehvi.greedy_qehvi_scores`).  Because
        the joint score never double-counts the hypervolume a candidate
        shares with the prefix, the greedy loop is pushed toward diverse
        batches, and submodularity makes it a constant-factor approximation
        of the joint optimum.
        """
        q = int(q)
        if q < 1:
            raise ValueError("q must be >= 1")
        if q == 1 or len(self.history) < self.NUM_INITIAL_SAMPLES:
            return super().suggest_batch(q)

        objectives = self.history.objective_matrix()
        encoded = self.space.encode_many([o.configuration for o in self.history])
        self._speed_gp.fit(encoded, objectives[:, 0])
        self._recall_gp.fit(encoded, objectives[:, 1])

        batch: list[Configuration] = []
        prefix_means = np.empty((0, 2))
        prefix_stds = np.empty((0, 2))
        for _ in range(q):
            candidates = uniform_samples(self.CANDIDATE_POOL, self.space.dimension, self.rng)
            speed = self._speed_gp.predict(candidates)
            recall = self._recall_gp.predict(candidates)
            candidate_means = np.column_stack([speed.mean, recall.mean])
            candidate_stds = np.column_stack([speed.std, recall.std])
            acquisition = greedy_qehvi_scores(
                prefix_means,
                prefix_stds,
                candidate_means,
                candidate_stds,
                objectives,
                reference_point=np.zeros(2),
                num_samples=self.EHVI_SAMPLES,
                rng=self.rng,
            )
            best = int(np.argmax(acquisition))
            batch.append(self.space.decode(candidates[best]))
            prefix_means = np.vstack([prefix_means, candidate_means[best]])
            prefix_stds = np.vstack([prefix_stds, candidate_stds[best]])
        return batch
