"""Figure 10: sampling quality of the polling surrogate versus the native surrogate."""

from __future__ import annotations

import numpy as np
from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.ablation import figure10_sampling_quality


def test_figure10_sampled_configurations(benchmark, scale, ablation_reports):
    surrogate_reports = ablation_reports["surrogate"].reports
    result = benchmark.pedantic(
        lambda: figure10_sampling_quality(
            "glove-small",
            scale=scale,
            reports={
                "polling_surrogate": surrogate_reports["polling_surrogate"],
                "native_surrogate": surrogate_reports["native_surrogate"],
            },
        ),
        rounds=1,
        iterations=1,
    )
    sections = []
    spreads = {}
    for variant, samples in result.samples.items():
        rows = [
            [s["index_type"], round(s["qps"], 1), round(s["recall"], 3), s["pareto_rank"]]
            for s in samples
        ]
        sections.append(
            format_table(
                ["index type", "QPS", "recall", "pareto rank"],
                rows,
                title=f"Figure 10 ({variant}): sampled configurations",
            )
        )
        recalls = np.array([s["recall"] for s in samples]) if samples else np.zeros(1)
        spreads[variant] = float(recalls.std())
    summary = "\n".join(f"{variant}: recall spread (std) = {value:.4f}" for variant, value in spreads.items())
    register_report("Figure 10 - sampling quality", "\n\n".join(sections) + "\n\n" + summary)
    assert set(result.samples) == {"polling_surrogate", "native_surrogate"}
