"""Figure 9: dynamic index-type scoring during the tuning process."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.ablation import figure9_score_dynamics


def test_figure9_index_type_score_weights(benchmark, scale, ablation_reports):
    report = ablation_reports["budget_allocation"].reports["successive_abandon"]
    weights = benchmark.pedantic(
        lambda: figure9_score_dynamics("glove-small", scale=scale, report=report),
        rounds=1,
        iterations=1,
    )
    index_types = sorted(weights[0]) if weights else []
    rows = []
    for iteration, snapshot in enumerate(weights, start=1):
        rows.append([iteration] + [round(snapshot.get(name, 0.0), 3) for name in index_types])
    table = format_table(
        ["iteration"] + index_types,
        rows,
        title="Figure 9: index-type score weights per iteration (0 = abandoned)",
    )
    abandoned = report.abandoned
    footer = "abandoned: " + (
        ", ".join(f"{name}@{iteration}" for name, iteration in abandoned.items()) or "none"
    )
    register_report("Figure 9 - score dynamics", table + "\n" + footer)
    assert len(weights) > 0
    for snapshot in weights:
        assert abs(sum(snapshot.values()) - 1.0) < 1e-6
