"""Figure 12: handling user preferences on the recall rate (constraint model + bootstrapping)."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.preference import figure12_user_preference


def test_figure12_user_preference(benchmark, scale):
    comparison = benchmark.pedantic(
        lambda: figure12_user_preference("glove-small", scale=scale), rounds=1, iterations=1
    )
    rows = []
    for mode in ("plain", "constraint", "bootstrap"):
        for stage_index, constraint in enumerate(comparison.recall_constraints):
            samples = comparison.samples_to_match_plain[mode][stage_index]
            rows.append(
                [
                    mode,
                    constraint,
                    round(comparison.best_speeds[mode][stage_index], 1),
                    samples if samples is not None else "-",
                ]
            )
    table = format_table(
        ["variant", "recall constraint", "best feasible QPS", "samples to match plain variant"],
        rows,
        title="Figure 12: user-preference handling (plain vs constraint model vs + bootstrapping)",
    )
    register_report("Figure 12 - user preference", table)

    # Reproduction target: the constraint-model variants reach the plain
    # variant's performance using no more samples than the plain variant's
    # full budget, for each constraint stage where they reach it at all.
    budget = scale.preference_iterations
    for mode in ("constraint", "bootstrap"):
        for samples in comparison.samples_to_match_plain[mode]:
            if samples is not None:
                assert samples <= budget
