"""Tiered query cache: Zipfian traffic speedup and zero staleness.

Two pinned properties of the query cache (:mod:`repro.vdms.cache`):

1. **Skewed traffic pays off.**  The same Zipf(s=1.1) popularity-skewed
   request stream is replayed with the cache off and on (everything else
   identical).  Hot queries repeat, repeats are served from the result tier
   at cache-probe cost, and the measured concurrent QPS must improve by
   >= 3x with the hit ratio reported alongside.

2. **Zero staleness.**  After every mutation batch of an interleaved
   search/insert/delete/maintain schedule, cached answers must be
   bit-identical to a fresh cache-bypassed search of the same request —
   the collection-version key protocol means a hit can never cross a
   mutation.  Uniform traffic must also stay unharmed (no slowdown beyond
   a small tolerance when nothing repeats).

All numbers are the deterministic cost-model QPS, so the assertions are
machine-independent.
"""

from __future__ import annotations

import numpy as np
from conftest import register_report

from repro.analysis.reporting import format_table
from repro.config.milvus_space import default_configuration
from repro.datasets.registry import load_dataset
from repro.vdms.server import VectorDBServer
from repro.vdms.system_config import SystemConfig
from repro.workloads import VDMSTuningEnvironment
from repro.workloads.workload import SearchWorkload

DATASET = "glove-small"
SEED = 0
SKEW = 1.1
#: Stream length as a multiple of the query pool: sustained skewed traffic,
#: where the hit ratio climbs above a single pass over the pool.
STREAM_FACTOR = 4
MIN_SPEEDUP = 3.0
SEARCH_THREADS = 4


def skewed_environment() -> VDMSTuningEnvironment:
    """A tuning environment replaying a Zipf-skewed request stream."""
    dataset = load_dataset(DATASET)
    base = SearchWorkload.from_dataset(dataset, concurrency=10)
    workload = SearchWorkload(
        queries=base.queries,
        ground_truth=base.ground_truth,
        top_k=base.top_k,
        concurrency=base.concurrency,
        popularity_skew=SKEW,
        popularity_requests=STREAM_FACTOR * base.num_queries,
    )
    return VDMSTuningEnvironment(dataset, workload=workload, seed=SEED)


def cache_configuration(environment, policy: str):
    """The default configuration with the scheduler on and the cache set."""
    overrides = {"search_threads": SEARCH_THREADS, "cache_policy": policy}
    if policy != "none":
        overrides["cache_capacity"] = 4096
    return default_configuration(environment.space, overrides=overrides)


def test_cache_speedup_on_zipfian_traffic():
    environment = skewed_environment()
    off = environment.evaluate(cache_configuration(environment, "none"))
    on = environment.evaluate(cache_configuration(environment, "lru"))
    speedup = on.qps / max(off.qps, 1e-9)
    hit_ratio = on.breakdown.get("cache_hit_ratio", 0.0)

    table = format_table(
        ["cache", "QPS", "recall", "hit ratio", "hits", "misses", "unique"],
        [
            ["none", round(off.qps, 1), round(off.recall, 4), "-", "-", "-", "-"],
            [
                "lru",
                round(on.qps, 1),
                round(on.recall, 4),
                round(hit_ratio, 4),
                int(on.breakdown.get("cache_hits", 0)),
                int(on.breakdown.get("cache_misses", 0)),
                int(on.breakdown.get("cache_unique_requests", 0)),
            ],
        ],
        title=(
            f"query cache on Zipf(s={SKEW}) traffic, {DATASET}, "
            f"{STREAM_FACTOR}x pool stream ({speedup:.2f}x speedup)"
        ),
    )
    register_report("query cache speedup", table)

    # Bit-identical serving: the cache may only change *when* work happens,
    # never what is returned.
    assert on.recall == off.recall, (
        f"cache changed recall: {on.recall} != {off.recall}"
    )
    assert hit_ratio > 0.5, f"hit ratio {hit_ratio:.3f} too low for Zipf s={SKEW}"
    assert speedup >= MIN_SPEEDUP, (
        f"cache speedup {speedup:.2f}x < {MIN_SPEEDUP}x at hit ratio {hit_ratio:.3f}"
    )


def test_cache_is_harmless_on_uniform_traffic():
    """With no repeats every request misses; QPS must stay within tolerance."""
    dataset = load_dataset(DATASET)
    environment = VDMSTuningEnvironment(dataset, seed=SEED)
    off = environment.evaluate(cache_configuration(environment, "none"))
    on = environment.evaluate(cache_configuration(environment, "lru"))
    assert on.recall == off.recall
    assert on.breakdown.get("cache_hit_ratio", 0.0) == 0.0
    assert on.qps >= 0.9 * off.qps, (
        f"cache-on uniform QPS {on.qps:.1f} fell more than 10% below "
        f"cache-off {off.qps:.1f}"
    )


def test_zero_staleness_across_mutations():
    """Cached answers stay bit-identical to fresh scans across mutations."""
    dataset = load_dataset(DATASET)
    server = VectorDBServer()
    server.apply_system_config(
        SystemConfig(cache_policy="lru", cache_capacity=1024)
    )
    collection = server.create_collection(
        "bench_cache_staleness", dataset.dimension, metric=dataset.metric
    )
    rng = np.random.default_rng(SEED)
    num_rows = dataset.vectors.shape[0]
    collection.insert(dataset.vectors, ids=np.arange(num_rows))
    collection.flush()
    collection.create_index("IVF_FLAT", {"nlist": 32, "nprobe": 8})

    queries = dataset.queries[:8]
    checked = 0
    for round_index in range(5):
        # Issue the batch twice: the second pass is served from cache.
        collection.search(queries, top_k=10)
        cached = collection.search(queries, top_k=10)
        fresh = collection.search(queries, top_k=10, use_cache=False)
        np.testing.assert_array_equal(cached.ids, fresh.ids)
        np.testing.assert_array_equal(cached.distances, fresh.distances)
        checked += 1
        # Mutate: delete a slice, insert replacements, occasionally heal.
        doomed = rng.choice(num_rows, size=50, replace=False)
        collection.delete(doomed)
        collection.insert(
            rng.standard_normal((50, dataset.dimension)).astype(np.float32),
            ids=np.arange(num_rows + round_index * 50, num_rows + (round_index + 1) * 50),
        )
        collection.flush()
        if round_index % 2 == 1:
            collection.run_maintenance()
        # Post-mutation: a lookup at the new version must recompute, and
        # recomputation must agree with the cache-bypassed scan.
        after = collection.search(queries, top_k=10)
        fresh_after = collection.search(queries, top_k=10, use_cache=False)
        np.testing.assert_array_equal(after.ids, fresh_after.ids)
        np.testing.assert_array_equal(after.distances, fresh_after.distances)
    assert checked == 5
    stats = collection.query_cache.stats
    assert stats.result_hits > 0, "the staleness check never exercised a hit"
