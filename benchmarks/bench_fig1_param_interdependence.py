"""Figure 1: interdependence of segment_maxSize and segment_sealProportion.

Regenerates the two heat maps (search speed and recall) of the paper's
Figure 1 as text grids.  The reproduction target is the *shape*: the best
seal proportion depends on the segment size (and vice versa), so neither
parameter can be tuned in isolation.
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.motivation import figure1_parameter_grid


def _grid_table(result, matrix, title):
    headers = [f"{result.x_name} \\ {result.y_name}"] + [f"{v:.2f}" if isinstance(v, float) else str(v) for v in result.y_values]
    rows = []
    for i, x_value in enumerate(result.x_values):
        rows.append([str(x_value)] + [float(matrix[i, j]) for j in range(len(result.y_values))])
    return format_table(headers, rows, title=title, precision=1)


def test_figure1_parameter_interdependence(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure1_parameter_grid("glove-small", scale=scale), rounds=1, iterations=1
    )
    qps_table = _grid_table(result, result.qps, "Figure 1 (left): search speed (QPS)")
    recall_table = _grid_table(result, result.recall, "Figure 1 (right): recall rate")
    # The qualitative claim of Figure 1: the best seal proportion is not the
    # same for every segment size (parameter interdependence).
    best_proportion_per_size = result.qps.argmax(axis=1)
    interdependent = len(set(best_proportion_per_size.tolist())) > 1
    register_report(
        "Figure 1 - parameter interdependence",
        qps_table
        + "\n\n"
        + recall_table
        + f"\n\nbest sealProportion column differs across maxSize rows: {interdependent}",
    )
    assert result.qps.std() > 0
