"""Section V-D: holistic BO model versus tuning each index type individually."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.ablation import holistic_vs_individual


def test_holistic_vs_individual_index_tuning(benchmark, scale):
    result = benchmark.pedantic(
        lambda: holistic_vs_individual("glove-small", scale=scale), rounds=1, iterations=1
    )
    rows = []
    for approach in ("holistic", "individual"):
        entry = result[approach]
        rows.append(
            [
                approach,
                entry["best_index_type"] or "-",
                round(entry["best_speed"], 1) if entry["best_speed"] else "-",
                round(entry["best_recall"], 3) if entry["best_recall"] else "-",
            ]
        )
    table = format_table(
        ["approach", "selected index", "best QPS", "recall"],
        rows,
        title="Holistic BO model vs per-index-type tuning (same total budget)",
    )
    register_report("Ablation - holistic vs individual", table)
    # The paper's observation: with the same budget the holistic model does
    # not lose to splitting the budget per index type.
    holistic_speed = result["holistic"]["best_speed"] or 0.0
    individual_speed = result["individual"]["best_speed"] or 0.0
    assert holistic_speed >= 0.6 * individual_speed
