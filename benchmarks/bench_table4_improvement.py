"""Table IV: performance improvement of auto-configuration over the default setting."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.improvement import improvement_over_default
from repro.analysis.reporting import format_table


def test_table4_improvement_over_default(benchmark, comparison_runs):
    def derive():
        reports = {}
        for dataset_name, runs in comparison_runs.items():
            run = runs["vdtuner"]
            reports[dataset_name] = improvement_over_default(run.report.history, run.default_result)
        return reports

    reports = benchmark.pedantic(derive, rounds=1, iterations=1)
    rows = [
        [
            dataset_name,
            f"{report.speed_improvement * 100:.2f}%",
            f"{report.recall_improvement * 100:.2f}%",
            round(report.default_speed, 1),
            round(report.default_recall, 3),
        ]
        for dataset_name, report in reports.items()
    ]
    table = format_table(
        ["dataset", "speed improvement", "recall improvement", "default QPS", "default recall"],
        rows,
        title="Table IV: improvement by auto-configuration (VDTuner vs default)",
    )
    register_report("Table IV - improvement over default", table)
    # The paper's qualitative claim: auto-configuration improves on the
    # default on every dataset, in at least one objective without hurting the
    # other.
    assert all(
        report.speed_improvement > 0 or report.recall_improvement > 0
        for report in reports.values()
    )
