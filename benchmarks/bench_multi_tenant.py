"""Multi-tenant serving: isolation under burst, SLO attainment, oracles.

One server, two tenants.  ``quiet`` offers a steady trickle (0.25x the
measured single-worker saturation); ``burst`` offers 10x the quiet rate —
2.5x the whole server's capacity.  The benchmark pins the refactor's
headline claims:

1. **Weighted-fair scheduling isolates.**  With per-tenant bounded queues
   drained by stride scheduling, the burst tenant's overload is *its own
   problem*: its queue fills and sheds, while the quiet tenant's served p99
   stays within the pinned 2x of its alone-on-the-server p99 and none of
   its requests are shed.  The per-tenant admission ledgers balance exactly
   and sum to the controller-wide ledger.

2. **FIFO demonstrably does not.**  The same mixed load against a deep
   single FIFO queue (the pre-multi-tenant architecture) lets the burst
   backlog stand in front of every quiet request: the quiet tenant's p99
   blows past several multiples of its alone p99 (and past the fair-mode
   bound), which is exactly the failure mode the refactor removes.

3. **Multi-tenancy is invisible to results.**  Concurrent multi-tenant
   traffic returns bit-identical ids and distances to the same searches
   served sequentially by a single-tenant front-end over the same data.

4. **SLO-constrained tuning converges per tenant.**  A
   :class:`~repro.core.multi_tenant.MultiTenantTuner` over two tenants with
   different recall floors (the paper's user-specific recall preference,
   via recall-constrained acquisition) elects for every tenant an incumbent
   whose measured recall meets its floor, under one shared evaluation
   budget whose ledger balances.

Latencies are wall-clock (real sockets, real threads), so assertions use
ratios against same-host baselines plus small absolute slack for scheduling
jitter — never absolute milliseconds.
"""

from __future__ import annotations

import threading

import numpy as np
from _record import record_bench
from conftest import register_report

from repro.analysis.reporting import format_table
from repro.core.multi_tenant import MultiTenantTuner, TenantTunerSpec
from repro.core.online import OnlineTunerSettings
from repro.serving import (
    ServingConfig,
    ServingFrontend,
    TenantLoadProfile,
    TenantSLO,
    TenantSpec,
    measure_saturation,
    run_load,
    run_mixed_load,
)
from repro.serving.loadgen import _Client
from repro.vdms.server import VectorDBServer
from repro.workloads.environment import VDMSTuningEnvironment
from repro.datasets.registry import load_dataset

SEED = 11
#: Sized so one FLAT search costs ~10ms+: service time must dominate
#: per-request HTTP/threading overhead or "isolation" would measure sockets.
CORPUS_ROWS = 48_000
DIMENSION = 64
TOP_K = 10
WORKERS = 1
QUIET, BURST = "quiet", "burst"
#: The acceptance pin: with fair scheduling on, a 10x burst tenant may not
#: degrade the quiet tenant's served p99 beyond this factor of its alone-p99.
FAIR_DEGRADATION_FACTOR = 2.0
#: Absolute slack (ms) for 1-core scheduling jitter on small samples.
JITTER_SLACK_MS = 15.0

_state: dict = {}


def _backend() -> VectorDBServer:
    """Two identical FLAT collections big enough to cost real work."""
    if "backend" not in _state:
        backend = VectorDBServer()
        rng = np.random.default_rng(SEED)
        for name in (QUIET, BURST):
            vectors = rng.normal(size=(CORPUS_ROWS, DIMENSION)).astype(np.float32)
            collection = backend.create_collection(name, DIMENSION, auto_maintenance=False)
            collection.insert(vectors)
            collection.flush()
            collection.create_index("FLAT", {})
        _state["backend"] = backend
    return _state["backend"]


def _baseline() -> dict:
    """Measured saturation and the quiet tenant's alone-on-the-server p99."""
    if "baseline" not in _state:
        frontend = ServingFrontend(
            _backend(), ServingConfig(queue_depth=256, workers=WORKERS)
        ).start()
        try:
            saturation = measure_saturation(
                frontend.url, QUIET, threads=4, duration_seconds=2.0,
                top_k=TOP_K, use_cache=False, seed=SEED,
            )
            assert saturation > 1.0, f"saturation probe failed ({saturation:.2f} qps)"
            quiet_qps = max(2.0, 0.25 * saturation)
            alone = run_load(
                frontend.url, QUIET,
                qps=quiet_qps, duration_seconds=4.0,
                top_k=TOP_K, use_cache=False, seed=SEED,
            )
            assert alone.errors == 0 and alone.shed == 0
        finally:
            frontend.drain()
        # Guard the p99 estimate against small-sample flukes: it can never
        # be a fast outlier below 1.5x the median.
        p99 = max(alone.latency_p99_ms, 1.5 * alone.latency_p50_ms)
        _state["baseline"] = {
            "saturation_qps": saturation,
            "quiet_qps": quiet_qps,
            "burst_qps": 10.0 * quiet_qps,
            "alone_p50_ms": alone.latency_p50_ms,
            "alone_p99_ms": p99,
            "alone_report": alone,
        }
    return _state["baseline"]


def _profiles(baseline: dict) -> list[TenantLoadProfile]:
    return [
        TenantLoadProfile(QUIET, qps=baseline["quiet_qps"], top_k=TOP_K, use_cache=False),
        TenantLoadProfile(BURST, qps=baseline["burst_qps"], top_k=TOP_K, use_cache=False),
    ]


def test_fair_scheduling_isolates_quiet_tenant_from_10x_burst():
    baseline = _baseline()
    # Latency-budget queues, per tenant: a full queue is worth ~1.5x the
    # alone p99 of waiting — the bound that keeps a backlogged tenant's own
    # served tail sane while its excess is shed.
    queue_depth = max(2, int(round(
        baseline["saturation_qps"] * 1.5 * baseline["alone_p99_ms"] / 1000.0
    )))
    frontend = ServingFrontend(
        _backend(),
        ServingConfig(
            queue_depth=queue_depth,
            workers=WORKERS,
            scheduling="fair",
            tenants=(TenantSpec(QUIET, weight=1.0), TenantSpec(BURST, weight=1.0)),
        ),
    ).start()
    try:
        mixed = run_mixed_load(
            frontend.url, _profiles(baseline), duration_seconds=5.0, seed=SEED + 1
        )
        stats = frontend.admission.stats()
        tenant_payloads = frontend.admission.all_tenant_payloads()
    finally:
        frontend.drain()
    quiet = mixed.tenants[QUIET]
    burst = mixed.tenants[BURST]
    _state["fair"] = {"mixed": mixed, "queue_depth": queue_depth}

    assert quiet.errors == 0 and burst.errors == 0
    # Isolation, part 1: the quiet tenant's requests are never shed — the
    # burst tenant's backlog fills the burst queue, not the quiet queue.
    assert quiet.shed == 0, f"fair scheduling shed {quiet.shed} quiet requests"
    assert quiet.served == quiet.sent
    # Isolation, part 2 (the acceptance pin): quiet p99 within 2x alone p99.
    bound = FAIR_DEGRADATION_FACTOR * baseline["alone_p99_ms"] + JITTER_SLACK_MS
    assert quiet.latency_p99_ms <= bound, (
        f"quiet p99 {quiet.latency_p99_ms:.1f}ms exceeds "
        f"{FAIR_DEGRADATION_FACTOR}x alone p99 ({bound:.1f}ms) under fair scheduling"
    )
    # The burst tenant is genuinely overloaded — its excess is shed, which
    # is what proves isolation came from scheduling, not idle capacity.
    assert burst.shed > 0, "burst tenant shed nothing; the burst never overloaded"
    assert burst.shed_rate > 0.2

    # Per-tenant ledgers balance, and sum exactly to the global ledger.
    for name, payload in tenant_payloads.items():
        assert payload["admitted"] == (
            payload["served"] + payload["failed"] + payload["expired"]
            + payload["evicted"] + payload["in_flight"]
        ), f"tenant {name!r} ledger does not balance: {payload}"
    for counter in ("admitted", "shed", "rejected", "expired", "served", "failed", "evicted"):
        total = sum(payload[counter] for payload in tenant_payloads.values())
        assert getattr(stats, counter) == total, (
            f"global {counter} != sum of tenant ledgers"
        )


def test_fifo_lets_burst_tenant_poison_quiet_tail():
    baseline = _baseline()
    # The pre-multi-tenant architecture: one deep FIFO queue shared by all.
    frontend = ServingFrontend(
        _backend(),
        ServingConfig(queue_depth=256, workers=WORKERS, scheduling="fifo"),
    ).start()
    try:
        mixed = run_mixed_load(
            frontend.url, _profiles(baseline), duration_seconds=5.0, seed=SEED + 2,
            max_client_threads=96,
        )
    finally:
        frontend.drain()
    quiet = mixed.tenants[QUIET]
    _state["fifo"] = {"mixed": mixed}

    assert quiet.errors == 0
    # Every quiet request waits behind the burst backlog: the tail is not
    # bounded by any factor of the alone p99 — 3x is already far beyond the
    # fair-mode pin, and in practice this measures tens of x.
    floor = 3.0 * baseline["alone_p99_ms"]
    assert quiet.latency_p99_ms > floor, (
        f"FIFO quiet p99 {quiet.latency_p99_ms:.1f}ms unexpectedly under "
        f"{floor:.1f}ms — the burst backlog should have poisoned it"
    )
    fair_quiet = _state["fair"]["mixed"].tenants[QUIET]
    assert quiet.latency_p99_ms > fair_quiet.latency_p99_ms, (
        "FIFO quiet p99 should exceed the fair-scheduling quiet p99"
    )


def test_multi_tenant_serving_bit_identical_to_single_tenant():
    backend = _backend()
    rng = np.random.default_rng(SEED + 3)
    queries = {
        name: rng.normal(size=(20, DIMENSION)).astype(np.float32) for name in (QUIET, BURST)
    }

    # Single-tenant reference: each collection served alone, sequentially.
    expected: dict[str, list] = {}
    for name in (QUIET, BURST):
        frontend = ServingFrontend(
            backend, ServingConfig(queue_depth=64, workers=WORKERS)
        ).start()
        try:
            client = _Client(frontend.url)
            responses = []
            for row in queries[name]:
                status, payload = client.request(
                    "POST",
                    f"/collections/{name}/search",
                    {"queries": [row.tolist()], "top_k": TOP_K, "use_cache": False},
                )
                assert status == 200
                responses.append((payload["ids"], payload["distances"]))
            client.close()
            expected[name] = responses
        finally:
            frontend.drain()

    # Multi-tenant run: both tenants hammered concurrently, 3 clients each.
    frontend = ServingFrontend(
        backend,
        ServingConfig(
            queue_depth=64,
            workers=2,
            scheduling="fair",
            tenants=(TenantSpec(QUIET), TenantSpec(BURST)),
        ),
    ).start()
    mismatches: list[str] = []
    try:
        def hammer(name: str, repeats: int) -> None:
            client = _Client(frontend.url)
            try:
                for _ in range(repeats):
                    for index, row in enumerate(queries[name]):
                        status, payload = client.request(
                            "POST",
                            f"/collections/{name}/search",
                            {"queries": [row.tolist()], "top_k": TOP_K, "use_cache": False},
                        )
                        if status != 200:
                            mismatches.append(f"{name}[{index}]: HTTP {status}")
                        elif (payload["ids"], payload["distances"]) != expected[name][index]:
                            mismatches.append(f"{name}[{index}]: result mismatch")
            finally:
                client.close()

        threads = [
            threading.Thread(target=hammer, args=(name, 3), daemon=True)
            for name in (QUIET, BURST)
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
    finally:
        frontend.drain()
    assert not mismatches, f"multi-tenant results diverged: {mismatches[:5]}"
    _state["oracle"] = {"queries_checked": sum(len(q) for q in queries.values()) * 3 * 3}


def test_slo_constrained_tuning_reaches_every_tenant_floor():
    dataset = load_dataset("glove-small")
    floors = {"strict": 0.95, "relaxed": 0.80}
    specs = [
        TenantTunerSpec(
            name=name,
            environment=VDMSTuningEnvironment(dataset, seed=SEED + index),
            slo=TenantSLO(recall_floor=floor),
            settings=OnlineTunerSettings(total_steps=10, retune_budget=6, seed=SEED + index),
        )
        for index, (name, floor) in enumerate(floors.items())
    ]
    tuner = MultiTenantTuner(specs, budget=20)
    # The SLO threads into the constrained acquisition: each tenant's
    # objective carries its own recall floor.
    for name, floor in floors.items():
        assert tuner.objective_for(name).recall_constraint == floor
    report = tuner.run()
    _state["tuning"] = {"report": report}

    # Budget ledger balances and was respected.
    assert report.budget_used <= report.budget_total
    assert sum(report.evaluations.values()) == report.budget_used
    for name, floor in floors.items():
        assert report.incumbents[name] is not None, f"tenant {name!r} never elected an incumbent"
        assert report.attained[name], f"tenant {name!r} did not attain its SLO"
        serve_records = [
            r for r in report.reports[name].records if r.mode == "serve" and not r.failed
        ]
        assert serve_records, f"tenant {name!r} never served its incumbent"
        assert serve_records[-1].recall + 1e-9 >= floor, (
            f"tenant {name!r} incumbent recall {serve_records[-1].recall:.4f} "
            f"misses its floor {floor}"
        )


def test_zz_report():
    """Render the isolation table and persist BENCH_multi_tenant.json."""
    baseline = _baseline()
    rows = [
        [
            "quiet alone", QUIET, round(baseline["quiet_qps"], 1),
            baseline["alone_report"].served, baseline["alone_report"].shed,
            round(baseline["alone_report"].latency_p50_ms, 1),
            round(baseline["alone_p99_ms"], 1), "1.00x",
        ]
    ]
    summary: dict = {
        "corpus_rows": CORPUS_ROWS,
        "dimension": DIMENSION,
        "workers": WORKERS,
        "saturation_qps": round(baseline["saturation_qps"], 2),
        "quiet_qps": round(baseline["quiet_qps"], 2),
        "burst_qps": round(baseline["burst_qps"], 2),
        "alone_p99_ms": round(baseline["alone_p99_ms"], 3),
        "pinned_degradation_factor": FAIR_DEGRADATION_FACTOR,
    }
    for mode in ("fair", "fifo"):
        if mode not in _state:
            continue
        mixed = _state[mode]["mixed"]
        for name in (QUIET, BURST):
            report = mixed.tenants[name]
            ratio = (
                report.latency_p99_ms / baseline["alone_p99_ms"]
                if np.isfinite(report.latency_p99_ms) else float("nan")
            )
            rows.append(
                [
                    f"{mode} + 10x burst", name, round(report.offered_qps, 1),
                    report.served, report.shed,
                    round(report.latency_p50_ms, 1), round(report.latency_p99_ms, 1),
                    f"{ratio:.2f}x",
                ]
            )
        summary[mode] = {
            name: mixed.tenants[name].to_dict() for name in (QUIET, BURST)
        }
        summary[mode]["quiet_p99_vs_alone"] = round(
            mixed.tenants[QUIET].latency_p99_ms / baseline["alone_p99_ms"], 3
        )
    lines = [
        format_table(
            ["phase", "tenant", "offered", "served", "shed", "p50 ms", "p99 ms",
             "p99 vs alone"],
            rows,
            title=(
                f"multi-tenant isolation (measured saturation "
                f"{baseline['saturation_qps']:.1f} qps, {WORKERS} worker, "
                f"2x {CORPUS_ROWS}x{DIMENSION} FLAT; pin: fair quiet p99 <= "
                f"{FAIR_DEGRADATION_FACTOR:.0f}x alone)"
            ),
        )
    ]
    if "fair" in _state:
        lines.append(f"fair-mode per-tenant queue depth: {_state['fair']['queue_depth']}")
    if "oracle" in _state:
        lines.append(
            f"oracle: {_state['oracle']['queries_checked']} concurrent multi-tenant "
            f"responses bit-identical to single-tenant serving"
        )
        summary["oracle_queries_checked"] = _state["oracle"]["queries_checked"]
    if "tuning" in _state:
        tuning = _state["tuning"]["report"]
        lines.append(
            "SLO-constrained tuning: "
            + ", ".join(
                f"{name} attained={tuning.attained[name]} "
                f"({tuning.evaluations[name]} evals)"
                for name in sorted(tuning.attained)
            )
            + f"; budget {tuning.budget_used}/{tuning.budget_total}"
        )
        summary["tuning"] = tuning.summary()
    register_report("multi-tenant serving isolation and SLO attainment", "\n".join(lines))
    record_bench("multi_tenant", summary)
