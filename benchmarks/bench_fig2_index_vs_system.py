"""Figure 2: the best index type varies with the system configuration."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.motivation import figure2_index_vs_system


def test_figure2_best_index_varies_with_system_config(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure2_index_vs_system("glove-small", scale=scale), rounds=1, iterations=1
    )
    index_types = sorted(next(iter(result.values())).keys())
    rows = []
    for label, per_index in result.items():
        best = max(per_index, key=per_index.get)
        rows.append([label] + [round(per_index[name], 1) for name in index_types] + [best])
    table = format_table(
        ["system config"] + index_types + ["best index"],
        rows,
        title="Figure 2: search speed of index types under different system configs",
        precision=1,
    )
    register_report("Figure 2 - best index type vs system config", table)
    assert len(result) == 4
