"""Figure 6: best search speed under different recall sacrifices, all tuners, all datasets."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.analysis.tradeoff import DEFAULT_SACRIFICES, speed_vs_sacrifice_curve, tradeoff_ability


def test_figure6_speed_vs_recall_sacrifice(benchmark, comparison_runs):
    def derive():
        output = {}
        for dataset_name, runs in comparison_runs.items():
            curves = {
                name: speed_vs_sacrifice_curve(run.report.history, DEFAULT_SACRIFICES)
                for name, run in runs.items()
            }
            abilities = {
                name: tradeoff_ability(run.report.history, DEFAULT_SACRIFICES)
                for name, run in runs.items()
            }
            output[dataset_name] = (curves, abilities)
        return output

    output = benchmark.pedantic(derive, rounds=1, iterations=1)
    sections = []
    winners = []
    for dataset_name, (curves, abilities) in output.items():
        headers = ["tuner"] + [f"sacrifice {s}" for s in DEFAULT_SACRIFICES] + ["tradeoff std"]
        rows = []
        for tuner_name, curve in curves.items():
            rows.append(
                [tuner_name]
                + [round(curve[s], 1) for s in DEFAULT_SACRIFICES]
                + [round(abilities[tuner_name], 1)]
            )
        sections.append(
            format_table(headers, rows, title=f"Figure 6 ({dataset_name}): best QPS per recall sacrifice")
        )
        # Count at how many sacrifice levels VDTuner is the best method.
        vdtuner_wins = sum(
            1
            for s in DEFAULT_SACRIFICES
            if curves["vdtuner"][s] >= max(curve[s] for curve in curves.values())
        )
        winners.append((dataset_name, vdtuner_wins))
    summary = "\n".join(
        f"{dataset}: VDTuner best at {wins}/{len(DEFAULT_SACRIFICES)} sacrifice levels"
        for dataset, wins in winners
    )
    register_report("Figure 6 - tuning efficiency", "\n\n".join(sections) + "\n\n" + summary)

    # Reproduction targets that are stable at the fast scale (the paper's
    # full dominance needs the 200-iteration budget, see EXPERIMENTS.md):
    # VDTuner must beat the feedback-free Random baseline at a majority of
    # the (dataset, sacrifice) combinations, and stay within 40 % of the best
    # method on average.
    random_wins = 0
    gap_ratios = []
    for dataset_name, (curves, _) in output.items():
        for s in DEFAULT_SACRIFICES:
            best = max(curve[s] for curve in curves.values())
            if curves["vdtuner"][s] >= curves["random"][s]:
                random_wins += 1
            if best > 0:
                gap_ratios.append(curves["vdtuner"][s] / best)
    total_combinations = len(output) * len(DEFAULT_SACRIFICES)
    assert random_wins >= total_combinations // 2
    assert sum(gap_ratios) / len(gap_ratios) >= 0.6
