"""Hybrid filtered search: pre-filter vs post-filter execution, and the tuner.

Two pinned properties of the filtered query planner
(:mod:`repro.vdms.request`):

1. **Pre-filter beats post-filter at low selectivity.**  The same workload
   is replayed with the filter-execution strategy forced to ``pre`` and
   ``post`` at several selectivities.  At selectivity <= 0.1 a masked scan
   (or filtered candidate generation) touches a tenth of the data while
   post-filtering over-fetches and refills its way through most of the
   index — the bench asserts >= 2x measured QPS for pre-filter there, at
   recall parity.

2. **The tuner exploits the new dimensions.**  Given the 27-dimensional
   space (``filter_strategy`` + ``overfetch_factor`` included), VDTuner
   must find a configuration within 5% of the best *fixed-strategy*
   frontier — the best QPS over {pre, post} x {FLAT, IVF_FLAT, HNSW,
   AUTOINDEX} default configurations at the recall floor — demonstrating
   that the planner knobs are learnable, not dead weight.

All numbers are the deterministic cost-model QPS, so the assertions are
machine-independent.
"""

from __future__ import annotations

import numpy as np
from conftest import register_report

from repro.analysis.reporting import format_table
from repro.config import build_milvus_space
from repro.config.milvus_space import default_configuration
from repro.core import VDTuner, VDTunerSettings
from repro.datasets.registry import load_dataset
from repro.workloads import VDMSTuningEnvironment
from repro.workloads.dynamic import make_filtered_workload
from repro.workloads.workload import SearchWorkload

DATASET = "glove-small"
SEED = 0
SELECTIVITIES = (0.05, 0.1, 0.3)
#: Index types spanning exact, IVF and graph candidate generation.
FRONTIER_INDEX_TYPES = ("FLAT", "IVF_FLAT", "HNSW", "AUTOINDEX")
RECALL_FLOOR = 0.9
TUNER_ITERATIONS = 14


def filtered_environment(selectivity: float) -> VDMSTuningEnvironment:
    """A tuning environment whose workload carries a real attribute filter."""
    dataset = load_dataset(DATASET)
    base = SearchWorkload.from_dataset(dataset, concurrency=10)
    drifted, filtered = make_filtered_workload(
        dataset, base, selectivity, np.random.default_rng(SEED), suffix="bench_filter"
    )
    return VDMSTuningEnvironment(drifted, workload=filtered, seed=SEED)


def fixed_strategy_result(environment, index_type: str, strategy: str):
    """Evaluate one index type's default configuration at a forced strategy."""
    configuration = default_configuration(
        environment.space, index_type=index_type, overrides={"filter_strategy": strategy}
    )
    return environment.evaluate(configuration)


def test_pre_filter_beats_post_filter_at_low_selectivity():
    rows = []
    checked_low_selectivity = False
    for selectivity in SELECTIVITIES:
        environment = filtered_environment(selectivity)
        pre = fixed_strategy_result(environment, "IVF_FLAT", "pre")
        post = fixed_strategy_result(environment, "IVF_FLAT", "post")
        speedup = pre.qps / max(post.qps, 1e-9)
        rows.append(
            [
                selectivity,
                round(pre.qps, 1),
                round(post.qps, 1),
                round(speedup, 2),
                round(pre.recall, 4),
                round(post.recall, 4),
                int(post.breakdown.get("filter_candidates_dropped", 0)),
            ]
        )
        # Recall parity: forcing the strategy must not change what is
        # eligible, only how it is found (pre is never worse on IVF_FLAT).
        assert pre.recall >= post.recall - 1e-9
        if selectivity <= 0.1:
            checked_low_selectivity = True
            assert speedup >= 2.0, (
                f"pre-filter speedup {speedup:.2f}x < 2x at selectivity {selectivity}"
            )
    assert checked_low_selectivity

    table = format_table(
        ["selectivity", "pre QPS", "post QPS", "pre/post", "pre recall",
         "post recall", "dropped candidates"],
        rows,
        title=f"pre- vs post-filter execution on {DATASET} (IVF_FLAT defaults)",
    )
    register_report("filtered search strategies", table)


def test_tuner_reaches_the_fixed_strategy_frontier():
    selectivity = 0.1
    probe_environment = filtered_environment(selectivity)
    frontier_rows = []
    frontier_qps = 0.0
    for index_type in FRONTIER_INDEX_TYPES:
        for strategy in ("pre", "post"):
            result = fixed_strategy_result(probe_environment, index_type, strategy)
            eligible = not result.failed and result.recall >= RECALL_FLOOR
            if eligible:
                frontier_qps = max(frontier_qps, result.qps)
            frontier_rows.append(
                [index_type, strategy, round(result.qps, 1), round(result.recall, 4),
                 "yes" if eligible else "no"]
            )
    assert frontier_qps > 0.0, "no fixed-strategy configuration cleared the recall floor"

    tuner_environment = filtered_environment(selectivity)
    settings = VDTunerSettings(num_iterations=TUNER_ITERATIONS, seed=SEED)
    report = VDTuner(tuner_environment, settings=settings).run()
    best = report.best_observation(recall_floor=RECALL_FLOOR)
    assert best is not None, "the tuner found nothing above the recall floor"

    table = format_table(
        ["index type", "strategy", "QPS", "recall", "eligible"],
        frontier_rows
        + [["(tuner best)", best.configuration.get("filter_strategy", "?"),
            round(best.speed, 1), round(best.recall, 4), "yes"]],
        title=(
            f"fixed-strategy frontier vs VDTuner ({TUNER_ITERATIONS} iterations, "
            f"27-dim space, selectivity {selectivity}, recall floor {RECALL_FLOOR})"
        ),
    )
    register_report("filtered search tuning", table)

    assert best.speed >= 0.95 * frontier_qps, (
        f"tuner best {best.speed:.1f} QPS is below 95% of the fixed-strategy "
        f"frontier {frontier_qps:.1f} QPS"
    )
    assert build_milvus_space().dimension == 27
