"""Section V-E "Larger Datasets": VDTuner vs the strongest baseline on a 10x dataset."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.scalability import scalability_larger_dataset


def test_scalability_on_larger_dataset(benchmark, scale):
    result = benchmark.pedantic(
        lambda: scalability_larger_dataset(scale=scale), rounds=1, iterations=1
    )
    table = format_table(
        ["metric", "value"],
        [
            ["dataset", result.dataset_name],
            ["recall floor", result.recall_floor],
            ["VDTuner best QPS", round(result.vdtuner_best_speed, 1)],
            ["qEHVI best QPS", round(result.qehvi_best_speed, 1)],
            ["speed improvement", f"{result.speed_improvement * 100:.1f}%"],
            [
                "tuning speedup (time to reach qEHVI's best)",
                "-" if result.tuning_speedup is None else f"{result.tuning_speedup:.2f}x",
            ],
        ],
        title="Scalability: larger (deep-image-style) dataset, VDTuner vs qEHVI",
    )
    register_report("Scalability - larger dataset", table)
    assert result.vdtuner_best_speed >= 0.0
