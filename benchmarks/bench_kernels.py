"""Scan/merge kernel floors: cached-operand GEMM speedup and quantized recall.

Two pinned properties of the distance-kernel rework
(:mod:`repro.vdms.distance`):

1. **>= 2x single-thread scan throughput.**  The q=1 serving path (the
   query scheduler slices batches into single-query requests, so this is
   the steady-state hot path) is timed against a faithful copy of the seed
   kernel, which re-cast the stored matrix to float64 and re-derived the
   row norms on *every* call.  The cached :class:`ScanOperand` pays those
   casts once at seal/build time, so per-call work drops from
   O(n*d) cast + GEMM to GEMM alone; the floor is a conservative 2x.
   Speed without drift is the point: ids *and* distances must stay
   bit-identical to the seed kernel for every metric.

2. **Quantized fast-path recall.**  IVF_SQ8's int8/float16 fast scans score
   candidates directly on the codes (affine-expanded GEMV plus a float32
   correction) instead of decoding to float32 first.  They are
   recall-identical by construction, not bit-identical — the pinned gate is
   recall within 0.5% of the decode-first path on the same corpus.

The timed floor runs on real wall-clock (min-of-repeats, single process);
everything else is deterministic.  Results land in ``BENCH_kernels.json``
via :func:`benchmarks._record.record_bench`, including the measured
ns/(row*dim) figure that :meth:`repro.vdms.cost_model.CostModel.calibrate_scan`
accepts.
"""

from __future__ import annotations

import time

import numpy as np
from _record import record_bench

from repro.vdms.distance import (
    METRICS,
    ScanOperand,
    normalize_rows,
    pairwise_distances_blocked,
    prepare_vectors,
    top_k_select,
)
from repro.vdms.index.ivf_sq8 import IVFSQ8Index

SEED = 0
ROWS = 24_000
DIM = 96
QUERY_POOL = 32
TOP_K = 10
REPEATS = 3
#: Floor on the geometric-mean speedup across metrics.  l2/angular clear it
#: individually with wide margin (the seed kernel re-derived their row norms
#: per call on top of the casts); ip is memory-bandwidth-bound on the float64
#: operand either way, so its ceiling vs the seed is lower (~2.3x) and it
#: carries only the per-metric sanity floor.
MIN_SPEEDUP = 2.0
MIN_METRIC_SPEEDUP = 1.5
MAX_RECALL_DELTA = 0.005

_ZERO_SNAP_RELATIVE = 1e-14

#: Accumulated across the test functions in this module; the last one
#: persists it (record_bench overwrites the file wholesale).
_SUMMARY: dict = {}


def seed_pairwise_distances(queries: np.ndarray, vectors: np.ndarray, metric: str) -> np.ndarray:
    """Faithful copy of the pre-rework kernel: per-call casts and norms.

    This is the reference the speedup floor and the bit-identity assertion
    are measured against — three float64 casts and two einsums per call,
    exactly as the seed ``pairwise_distances`` computed.
    """
    queries = np.asarray(queries, dtype=np.float32)
    vectors = np.asarray(vectors, dtype=np.float32)
    if queries.ndim == 1:
        queries = queries[None, :]
    if metric == "ip":
        scores = -(queries.astype(np.float64) @ vectors.astype(np.float64).T)
        return scores.astype(np.float32)
    if metric == "angular":
        queries = normalize_rows(queries)
        vectors = normalize_rows(vectors)
    queries64 = queries.astype(np.float64)
    vectors64 = vectors.astype(np.float64)
    query_norms = np.einsum("ij,ij->i", queries64, queries64)[:, None]
    vector_norms = np.einsum("ij,ij->i", vectors64, vectors64)[None, :]
    distances = query_norms - 2.0 * (queries64 @ vectors64.T) + vector_norms
    np.maximum(distances, 0.0, out=distances)
    rounded = distances.astype(np.float32)
    rounded[distances < _ZERO_SNAP_RELATIVE * (query_norms + vector_norms)] = 0.0
    return rounded


def _corpus(metric: str) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(SEED)
    vectors = rng.standard_normal((ROWS, DIM)).astype(np.float32)
    queries = rng.standard_normal((QUERY_POOL, DIM)).astype(np.float32)
    return prepare_vectors(vectors, metric), prepare_vectors(queries, metric)


def _best_of(repeats: int, fn) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_cached_operand_scan_speedup_and_bit_identity():
    """q=1 scans over the cached operand: >= 2x the seed kernel, bitwise equal."""
    per_metric = {}
    for metric in METRICS:
        stored, queries = _corpus(metric)
        operand = ScanOperand.prepare(stored, metric).materialize()

        def seed_scan():
            for query in queries:
                distances = seed_pairwise_distances(query, stored, metric)
                top_k_select(distances, TOP_K)

        def cached_scan():
            for query in queries:
                distances = pairwise_distances_blocked(query[None, :], operand, metric)
                top_k_select(distances, TOP_K)

        # Warm both paths (BLAS initialization, lazy materialization) before
        # timing, then take the minimum over repeats of the q=1 call loop.
        seed_scan()
        cached_scan()
        seed_seconds = _best_of(REPEATS, seed_scan)
        cached_seconds = _best_of(REPEATS, cached_scan)
        speedup = seed_seconds / cached_seconds

        # Bit-identity: same ids, same float32 distances, every query.
        for query in queries:
            reference = seed_pairwise_distances(query, stored, metric)
            candidate = pairwise_distances_blocked(query[None, :], operand, metric)
            assert candidate.dtype == reference.dtype
            assert np.array_equal(candidate, reference)
            ref_pos, ref_ord = top_k_select(reference, TOP_K)
            new_pos, new_ord = top_k_select(candidate, TOP_K)
            assert np.array_equal(ref_pos, new_pos)
            assert np.array_equal(ref_ord, new_ord)

        row_dims = QUERY_POOL * ROWS * DIM
        per_metric[metric] = {
            "seed_ms_per_call": seed_seconds * 1e3 / QUERY_POOL,
            "cached_ms_per_call": cached_seconds * 1e3 / QUERY_POOL,
            "speedup": speedup,
            "gemm_ns_per_row_dim": cached_seconds * 1e9 / row_dims,
        }
        assert speedup >= MIN_METRIC_SPEEDUP, (
            f"{metric}: cached-operand scan only {speedup:.2f}x the seed kernel "
            f"(per-metric floor {MIN_METRIC_SPEEDUP}x)"
        )
    speedups = [entry["speedup"] for entry in per_metric.values()]
    geomean = float(np.exp(np.mean(np.log(speedups))))
    assert geomean >= MIN_SPEEDUP, (
        f"geometric-mean scan speedup {geomean:.2f}x across {sorted(per_metric)} "
        f"is below the {MIN_SPEEDUP}x floor"
    )
    _SUMMARY["exact_scan"] = {
        "rows": ROWS,
        "dimension": DIM,
        "queries_timed": QUERY_POOL,
        "min_speedup_floor": MIN_SPEEDUP,
        "min_metric_speedup_floor": MIN_METRIC_SPEEDUP,
        "geomean_speedup": geomean,
        "per_metric": per_metric,
    }


def _recall(ids: np.ndarray, truth: np.ndarray) -> float:
    hits = sum(
        len(set(row_ids.tolist()) & set(row_truth.tolist()))
        for row_ids, row_truth in zip(ids, truth)
    )
    return hits / truth.size


def test_sq8_fast_scan_recall_within_half_percent():
    """int8/float16 SQ8 fast scans: recall within 0.5% of the decode path."""
    rng = np.random.default_rng(SEED)
    rows, dim, pool = 8_000, 64, 64
    results = {}
    for metric in ("l2", "angular"):
        vectors = rng.standard_normal((rows, dim)).astype(np.float32)
        queries = rng.standard_normal((pool, dim)).astype(np.float32)
        stored = prepare_vectors(vectors, metric)
        prepared_queries = prepare_vectors(queries, metric)
        exact = seed_pairwise_distances(prepared_queries, stored, metric)
        truth, _ = top_k_select(exact, TOP_K)

        per_mode = {}
        for mode in ("off", "int8", "float16"):
            index = IVFSQ8Index(metric=metric, nlist=32, nprobe=8, fast_scan=mode)
            index.build(vectors)
            start = time.perf_counter()
            ids, _, _ = index.search(queries, TOP_K)
            elapsed = time.perf_counter() - start
            per_mode[mode] = {
                "recall": _recall(ids, truth),
                "search_ms": elapsed * 1e3,
            }
        baseline = per_mode["off"]["recall"]
        for mode in ("int8", "float16"):
            delta = baseline - per_mode[mode]["recall"]
            assert delta <= MAX_RECALL_DELTA, (
                f"{metric}/{mode}: fast-scan recall {per_mode[mode]['recall']:.4f} is "
                f"{delta:.4f} below the decode path ({baseline:.4f}); "
                f"gate is {MAX_RECALL_DELTA}"
            )
        results[metric] = per_mode
    _SUMMARY["sq8_fast_scan"] = {
        "rows": rows,
        "dimension": dim,
        "queries": pool,
        "top_k": TOP_K,
        "max_recall_delta": MAX_RECALL_DELTA,
        "per_metric": results,
    }

    record_bench("kernels", _SUMMARY)
