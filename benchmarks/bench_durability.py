"""Durability tier: WAL overhead, checkpoint-bounded recovery, exact mmap serving.

Three pinned claims about the durability tier (:mod:`repro.vdms.durability`):

1. **WAL overhead is bounded.**  Running the same mutation schedule against
   a durable collection (``wal+checkpoint``, ``wal_sync_policy="batch"``)
   sustains >= 0.5x the mutation throughput of the in-memory collection,
   and "always" pays strictly more fsyncs than "batch" for the identical
   schedule — the group-commit amortization the ``wal_sync_policy`` knob
   buys, visible in the deterministic WAL counters.

2. **Checkpoints bound recovery.**  Recovering a directory whose history
   lives entirely in the WAL replays every logged record; recovering the
   same data after a checkpoint replays none of them — the tail, not the
   history, is what recovery re-executes.  The replayed-record counters
   are exact; the wall-clock comparison carries a generous margin.

3. **Mmap serving is exact.**  A collection recovered with
   ``mmap_vectors=True`` serves ids *and* distances bit-identical to the
   eagerly-loaded recovery, from read-only ``np.memmap`` arrays — the
   page cache, not the heap, holds the checkpointed vectors.

The crash-consistency proof itself lives in
tests/vdms/test_crash_recovery.py; this file measures the price of the
guarantees (see docs/testing.md).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import register_report

from repro.analysis.reporting import format_table
from repro.vdms import Collection, SystemConfig
from repro.vdms.segment import SegmentState

DIMENSION = 64
BATCH_ROWS = 800
BATCHES = 60  # 48k rows through the mutation schedule
FLUSH_EVERY = 10
DELETE_EVERY = 20
TOP_K = 10
SEED = 20260807
MIN_THROUGHPUT_RATIO = 0.5
#: Wall-clock margin for the recovery comparison: checkpointed recovery
#: must not be meaningfully slower than full-WAL replay of the same data
#: (the deterministic record counters carry the exact claim).
RECOVERY_MARGIN = 1.25


def system_config(durability_mode: str, sync_policy: str = "batch") -> SystemConfig:
    return SystemConfig(
        durability_mode=durability_mode,
        wal_sync_policy=sync_policy,
        shard_num=1,
        segment_max_size=2048,
        insert_buf_size=2048,
    )


def build_collection(name: str, config: SystemConfig, data_dir=None) -> Collection:
    return Collection(
        name,
        DIMENSION,
        metric="l2",
        system_config=config,
        data_dir=None if data_dir is None else str(data_dir),
        auto_maintenance=False,
    )


def mutation_batches() -> list[np.ndarray]:
    rng = np.random.default_rng(SEED)
    return [
        rng.normal(size=(BATCH_ROWS, DIMENSION)).astype(np.float32)
        for _ in range(BATCHES)
    ]


def run_mutation_schedule(collection: Collection, batches: list[np.ndarray]) -> float:
    """Drive the fixed insert/delete/flush schedule; return elapsed seconds."""
    start = time.perf_counter()
    next_id = 0
    for index, batch in enumerate(batches):
        ids = np.arange(next_id, next_id + batch.shape[0], dtype=np.int64)
        collection.insert(batch, ids=ids)
        next_id += batch.shape[0]
        if (index + 1) % DELETE_EVERY == 0:
            collection.delete(np.arange(index, next_id, 97, dtype=np.int64))
        if (index + 1) % FLUSH_EVERY == 0:
            collection.flush()
    return time.perf_counter() - start


def best_of(runs: int, measure) -> float:
    return min(measure() for _ in range(runs))


def test_wal_overhead_is_bounded(tmp_path):
    batches = mutation_batches()
    rows = BATCHES * BATCH_ROWS
    runs = []
    for label, mode, sync_policy in [
        ("off", "off", "batch"),
        ("wal+checkpoint/batch", "wal+checkpoint", "batch"),
        ("wal+checkpoint/always", "wal+checkpoint", "always"),
    ]:
        config = system_config(mode, sync_policy)
        data_dir = None if mode == "off" else tmp_path / label.replace("/", "-")
        collection = build_collection("bench", config, data_dir)
        elapsed = run_mutation_schedule(collection, batches)
        stats = collection.durability.stats if collection.durability else None
        collection.close()
        runs.append(
            {
                "label": label,
                "elapsed": elapsed,
                "throughput": rows / elapsed,
                "records": stats.records_appended if stats else 0,
                "fsyncs": stats.fsyncs if stats else 0,
            }
        )

    off, batch, always = runs
    table = format_table(
        ["durability", "rows/s", "elapsed (ms)", "WAL records", "fsyncs",
         "throughput vs off"],
        [
            [
                run["label"],
                round(run["throughput"]),
                round(run["elapsed"] * 1e3, 1),
                run["records"],
                run["fsyncs"],
                round(run["throughput"] / off["throughput"], 3),
            ]
            for run in runs
        ],
        title=f"WAL mutation overhead ({rows} rows x {DIMENSION} dims)",
    )
    register_report("Durability: WAL mutation overhead", table)

    ratio = batch["throughput"] / off["throughput"]
    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"batch-synced WAL throughput is {ratio:.2f}x of durability-off "
        f"(floor {MIN_THROUGHPUT_RATIO}x)"
    )
    # Identical schedules log identical records; the sync policy decides
    # how many of them reach the disk individually.
    assert always["records"] == batch["records"]
    assert always["fsyncs"] == always["records"], "'always' must fsync every record"
    assert batch["fsyncs"] < always["fsyncs"], (
        "'batch' must amortize fsyncs into commit records"
    )


def test_checkpoint_bounds_recovery(tmp_path):
    batches = mutation_batches()

    def populate(data_dir, mode: str) -> Collection:
        collection = build_collection("bench", system_config(mode), data_dir)
        run_mutation_schedule(collection, batches)
        collection.flush()
        collection.create_index("FLAT", {})
        return collection

    cold_dir = tmp_path / "cold"
    cold = populate(cold_dir, "wal")  # entire history lives in the WAL
    cold.close()

    checkpointed_dir = tmp_path / "checkpointed"
    checkpointed = populate(checkpointed_dir, "wal+checkpoint")
    checkpointed.checkpoint()  # history captured; the WAL tail is empty
    checkpointed.close()

    def recover_once(data_dir):
        start = time.perf_counter()
        collection = Collection.recover(str(data_dir), auto_maintenance=False)
        elapsed = time.perf_counter() - start
        report = collection.recovery_report
        rows = collection.num_rows
        collection.close()
        return elapsed, report, rows

    cold_time = best_of(3, lambda: recover_once(cold_dir)[0])
    checkpointed_time = best_of(3, lambda: recover_once(checkpointed_dir)[0])
    _, cold_report, cold_rows = recover_once(cold_dir)
    _, checkpointed_report, checkpointed_rows = recover_once(checkpointed_dir)

    table = format_table(
        ["layout", "recovery (ms)", "WAL records replayed", "segments loaded",
         "rows"],
        [
            ["cold (WAL only)", round(cold_time * 1e3, 1),
             cold_report.wal_records_replayed, cold_report.segments_loaded,
             cold_rows],
            ["checkpointed", round(checkpointed_time * 1e3, 1),
             checkpointed_report.wal_records_replayed,
             checkpointed_report.segments_loaded, checkpointed_rows],
        ],
        title="recovery cost: full-WAL replay vs checkpoint + tail",
    )
    register_report("Durability: checkpoint-bounded recovery", table)

    assert cold_rows == checkpointed_rows
    assert cold_report.segments_loaded == 0
    assert cold_report.wal_records_replayed > BATCHES, (
        "cold recovery must replay the full mutation history"
    )
    assert checkpointed_report.wal_records_replayed == 0, (
        "a checkpoint must leave recovery nothing to replay"
    )
    assert checkpointed_report.segments_loaded > 0
    assert checkpointed_time <= cold_time * RECOVERY_MARGIN, (
        f"checkpointed recovery took {checkpointed_time * 1e3:.1f}ms vs "
        f"{cold_time * 1e3:.1f}ms for full-WAL replay"
    )


def test_mmap_recovery_serves_identical_results(tmp_path):
    batches = mutation_batches()
    data_dir = tmp_path / "mmap"
    collection = build_collection("bench", system_config("wal+checkpoint"), data_dir)
    run_mutation_schedule(collection, batches)
    collection.flush()
    collection.create_index("FLAT", {})
    collection.checkpoint()
    collection.close()

    queries = np.random.default_rng(SEED + 1).normal(
        size=(32, DIMENSION)
    ).astype(np.float32)

    def recover_and_search(mmap_vectors: bool):
        start = time.perf_counter()
        recovered = Collection.recover(
            str(data_dir), auto_maintenance=False, mmap_vectors=mmap_vectors
        )
        elapsed = time.perf_counter() - start
        result = recovered.search(queries, TOP_K)
        mapped = sum(
            isinstance(segment.vectors, np.memmap)
            for shard in recovered.shards
            for segment in shard.segments.segments
            if segment.state is not SegmentState.GROWING
        )
        mapped_bytes = sum(
            segment.vectors.nbytes
            for shard in recovered.shards
            for segment in shard.segments.segments
            if isinstance(segment.vectors, np.memmap)
        )
        for shard in recovered.shards:
            for segment in shard.segments.segments:
                if isinstance(segment.vectors, np.memmap):
                    assert not segment.vectors.flags.writeable
        recovered.close()
        return result, elapsed, mapped, mapped_bytes

    eager_result, eager_time, eager_mapped, _ = recover_and_search(False)
    mmap_result, mmap_time, mmap_mapped, mapped_bytes = recover_and_search(True)

    table = format_table(
        ["recovery", "time (ms)", "mmapped segments", "mmapped MiB",
         "identical to eager"],
        [
            ["eager", round(eager_time * 1e3, 1), eager_mapped, 0.0, "-"],
            ["mmap", round(mmap_time * 1e3, 1), mmap_mapped,
             round(mapped_bytes / 2**20, 2),
             bool(
                 np.array_equal(mmap_result.ids, eager_result.ids)
                 and np.array_equal(mmap_result.distances, eager_result.distances)
             )],
        ],
        title="mmap-backed recovery vs eager load",
    )
    register_report("Durability: mmap-backed serving", table)

    assert eager_mapped == 0
    assert mmap_mapped > 0, "mmap recovery must serve checkpointed segments mapped"
    assert np.array_equal(mmap_result.ids, eager_result.ids)
    assert np.array_equal(mmap_result.distances, eager_result.distances)
