"""Sharded serving engine: multi-shard search throughput vs the serial baseline.

Replays the same workload at increasing shard counts, sizing the query
execution pool to match (``search_threads == shard_num``), and compares the
*measured* concurrent throughput — the deterministic event-simulated schedule
of per-shard tasks over the execution pool (see
:meth:`repro.vdms.cost_model.CostModel.concurrent_qps`) — against the
1-shard serial baseline (one request at a time, no execution pool).

Segment sizing matters: shards seal segments independently, so the bench
co-sizes ``segment_max_size`` with the shard count the way a tuner would
(rows per shard stay above the seal threshold; otherwise every row is
served from the growing buffer and sharding only adds overhead — exactly
the interdependence the tuning space now lets VDTuner discover).

Asserts the acceptance criterion of the sharded engine: >= 2x measured
search throughput at 4 shards + 4 threads over the 1-shard serial baseline,
with recall at parity.  Real wall-clock seconds of the thread-pool replay
are reported for context only (this harness may run on a single core; the
simulated schedule is the machine-independent measure).
"""

from __future__ import annotations

import time

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.datasets.registry import load_dataset
from repro.workloads.replay import WorkloadReplayer
from repro.workloads.workload import SearchWorkload

DATASET = "glove-small"
TOPOLOGIES = ((1, 1), (2, 2), (4, 4), (8, 8))

#: Shared base configuration: IVF_FLAT sized so every shard seals segments,
#: query_node_threads=1 so shard fan-out (not intra-query threading) is the
#: parallelism under test.
BASE_PARAMS = {
    "index_type": "IVF_FLAT",
    "nlist": 64,
    "nprobe": 8,
    "segment_max_size": 125,
    "insert_buf_size": 64,
    "graceful_time": 10_000,
    "query_node_threads": 1,
}


def test_sharded_search_speedup():
    dataset = load_dataset(DATASET)
    workload = SearchWorkload.from_dataset(dataset, concurrency=1)
    replayer = WorkloadReplayer(dataset, workload)

    rows = []
    results = {}
    for shard_num, search_threads in TOPOLOGIES:
        params = dict(BASE_PARAMS, shard_num=shard_num, search_threads=search_threads)
        started = time.perf_counter()
        result = replayer.replay(params)
        wall = time.perf_counter() - started
        results[(shard_num, search_threads)] = result
        baseline = results[TOPOLOGIES[0]]
        rows.append(
            [
                f"{shard_num} x {search_threads}",
                round(result.qps, 1),
                round(result.qps / baseline.qps, 2),
                round(result.recall, 4),
                round(result.latency_ms, 2),
                round(wall, 2),
            ]
        )

    table = format_table(
        ["shards x threads", "measured QPS", "speedup", "recall", "latency (ms)", "wall (s)"],
        rows,
        title=f"sharded scatter-gather search on {DATASET} (serial baseline = 1 x 1)",
    )
    register_report("sharded search speedup", table)

    baseline = results[(1, 1)]
    four = results[(4, 4)]
    speedup = four.qps / baseline.qps
    assert speedup >= 2.0, f"4 shards + 4 threads speedup {speedup:.2f}x < 2x"
    assert four.recall >= baseline.recall - 0.02
    # More shards must keep splitting the work while threads can absorb them.
    two = results[(2, 2)]
    assert baseline.qps < two.qps < four.qps
