"""Persisted benchmark trajectory: repo-root ``BENCH_*.json`` summaries.

The benchmark suite asserts its floors inline, but until now nothing
*persisted* — each run's numbers vanished with the pytest session, so there
was no trajectory to compare PRs against.  :func:`record_bench` is the
deliberately small fix: a benchmark's reporting step hands over a JSON-able
summary dict, and it lands at ``<repo root>/BENCH_<name>.json`` with enough
context (host scale marker, benchmark module) to read the file in isolation.

The files are committed, so the trajectory accumulates in git history:
``git log -p BENCH_serving.json`` *is* the performance timeline.  Keep the
payloads small (headline numbers, not raw samples) — they are diffs first,
data files second.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Mapping

__all__ = ["record_bench"]

_REPO_ROOT = Path(__file__).resolve().parent.parent


def record_bench(name: str, payload: Mapping[str, Any]) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root; returns the path.

    ``payload`` must be JSON-serializable.  A metadata envelope (benchmark
    name, UTC timestamp, python/platform) is added around it so historical
    entries remain interpretable.
    """
    if not name or any(c in name for c in "/\\"):
        raise ValueError("bench name must be a non-empty path-free identifier")
    path = _REPO_ROOT / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "summary": dict(payload),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
