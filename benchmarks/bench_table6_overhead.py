"""Table VI: tuning-time breakdown (configuration recommendation vs workload replay)."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.comparison import table6_overhead


def test_table6_time_breakdown(benchmark, scale, glove_comparison):
    rows_by_method = benchmark.pedantic(
        lambda: table6_overhead("glove-small", scale=scale, runs=glove_comparison),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            name,
            round(row.recommendation_seconds, 1),
            f"{row.recommendation_share * 100:.2f}%",
            round(row.replay_seconds, 1),
            round(row.total_seconds, 1),
        ]
        for name, row in rows_by_method.items()
    ]
    table = format_table(
        ["method", "recommendation (s)", "share", "workload replay (sim. s)", "total (s)"],
        rows,
        title="Table VI: time breakdown per method",
    )
    register_report("Table VI - overhead breakdown", table)
    # The paper's observation: recommendation time is a small fraction of the
    # total tuning time for every method.
    assert all(row.recommendation_share < 0.25 for row in rows_by_method.values())
