"""Figure 11: parameter-value traces over the tuning iterations (Geo-radius stand-in)."""

from __future__ import annotations

import numpy as np
from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.ablation import figure11_parameter_convergence


def test_figure11_parameter_convergence(benchmark, scale, comparison_runs):
    geo_run = comparison_runs["geo-radius-small"]["vdtuner"]
    traces = benchmark.pedantic(
        lambda: figure11_parameter_convergence(
            "geo-radius-small", scale=scale, report=geo_run.report
        ),
        rounds=1,
        iterations=1,
    )
    names = list(traces)
    length = len(next(iter(traces.values())))
    rows = []
    for iteration in range(length):
        rows.append([iteration + 1] + [round(float(traces[name][iteration]), 3) for name in names])
    table = format_table(
        ["iteration"] + names,
        rows,
        title="Figure 11: normalized parameter values per iteration (geo-radius)",
    )

    # Convergence summary: late-stage fluctuation should not exceed the
    # early-stage fluctuation (exploration first, exploitation later).
    half = max(2, length // 2)
    early = np.mean([np.std(np.asarray(traces[name][:half], dtype=float)) for name in names])
    late = np.mean([np.std(np.asarray(traces[name][half:], dtype=float)) for name in names])
    register_report(
        "Figure 11 - parameter convergence",
        table + f"\n\nearly-half mean std = {early:.3f}, late-half mean std = {late:.3f}",
    )
    assert length == len(geo_run.report.history)
