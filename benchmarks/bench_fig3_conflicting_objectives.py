"""Figure 3: conflicting objectives across index types and datasets.

Panels (a)/(b): per-index-type normalized search speed and recall on two
datasets — the best index type for speed is not the best for recall, and it
changes across datasets.  Panel (c): best weighted performance versus number
of uniform samples per index type — identifying the best index type needs
many samples.
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.motivation import (
    figure3_conflicting_objectives,
    figure3_optimization_curves,
)


def test_figure3ab_conflicting_objectives(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure3_conflicting_objectives(("glove-small", "geo-radius-small"), scale=scale),
        rounds=1,
        iterations=1,
    )
    sections = []
    for dataset_name, per_index in result.items():
        rows = [
            [index_type, round(speed, 3), round(recall, 3)]
            for index_type, (speed, recall) in per_index.items()
        ]
        sections.append(
            format_table(
                ["index type", "normalized speed", "recall"],
                rows,
                title=f"Figure 3 ({dataset_name}): per-index speed vs recall (defaults)",
            )
        )
    register_report("Figure 3ab - conflicting objectives", "\n\n".join(sections))
    assert set(result) == {"glove-small", "geo-radius-small"}


def test_figure3c_optimization_curves(benchmark, scale):
    num_samples = 20 if scale.name == "full" else 8
    curves = benchmark.pedantic(
        lambda: figure3_optimization_curves("glove-small", num_samples=num_samples, scale=scale),
        rounds=1,
        iterations=1,
    )
    rows = []
    for index_type, curve in curves.items():
        rows.append([index_type] + [round(float(v), 3) for v in curve])
    table = format_table(
        ["index type"] + [f"n={i+1}" for i in range(num_samples)],
        rows,
        title="Figure 3c: best weighted performance vs number of uniform samples",
    )
    register_report("Figure 3c - per-index optimization curves", table)
    assert all(len(curve) == num_samples for curve in curves.values())
