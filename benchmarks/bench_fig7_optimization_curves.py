"""Figure 7: optimization curves and sample/time efficiency on the GloVe stand-in."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.comparison import figure7_optimization_curves


def test_figure7_optimization_curves(benchmark, scale, glove_comparison):
    result = benchmark.pedantic(
        lambda: figure7_optimization_curves("glove-small", scale=scale, runs=glove_comparison),
        rounds=1,
        iterations=1,
    )
    sections = []
    for floor in result.recall_floors:
        rows = []
        for tuner_name, curve in result.curves[floor].items():
            iterations_needed = result.iterations_to_match_best_baseline[floor][tuner_name]
            time_needed = result.time_to_match_best_baseline[floor][tuner_name]
            rows.append(
                [
                    tuner_name,
                    round(float(curve[-1]), 1),
                    iterations_needed if iterations_needed is not None else "-",
                    round(time_needed, 1) if time_needed is not None else "-",
                ]
            )
        sections.append(
            format_table(
                ["tuner", "final best QPS", "iters to match best baseline", "sim. seconds to match"],
                rows,
                title=f"Figure 7: recall floor {floor}",
            )
        )
    register_report("Figure 7 - optimization curves", "\n\n".join(sections))

    # Sample-efficiency claim: wherever VDTuner reaches the best baseline's
    # final performance, it needs no more samples than that baseline needed
    # iterations in total.
    for floor in result.recall_floors:
        needed = result.iterations_to_match_best_baseline[floor]["vdtuner"]
        if needed is not None:
            assert needed <= len(result.runs["vdtuner"].report.history)
