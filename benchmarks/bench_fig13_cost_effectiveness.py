"""Figure 13: cost-aware optimization (QP$) versus plain search-speed optimization."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.experiments.cost import figure13_cost_effectiveness


def test_figure13_cost_effectiveness(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure13_cost_effectiveness("geo-radius-small", scale=scale), rounds=1, iterations=1
    )
    comparison = result.comparison
    summary = format_table(
        ["metric", "value"],
        [
            ["relative cost effectiveness (QP$ objective / QPS objective)", round(comparison.relative_cost_effectiveness, 3)],
            ["relative search speed (QP$ objective / QPS objective)", round(comparison.relative_search_speed, 3)],
            ["mean memory, QP$ objective (GiB)", round(comparison.mean_memory_qpd, 2)],
            ["mean memory, QPS objective (GiB)", round(comparison.mean_memory_qps, 2)],
            ["std memory, QP$ objective (GiB)", round(comparison.std_memory_qpd, 2)],
            ["std memory, QPS objective (GiB)", round(comparison.std_memory_qps, 2)],
        ],
        title="Figure 13a: optimizing QP$ vs optimizing QPS",
    )
    attribution = format_table(
        ["parameter", "memory contribution (GiB)", "QPS contribution"],
        [
            [name, round(result.memory_attribution[name], 2), round(result.speed_attribution[name], 1)]
            for name in result.memory_attribution
        ],
        title="Figure 13b: Shapley contribution of parameters (best QPS config vs default)",
    )
    register_report("Figure 13 - cost effectiveness", summary + "\n\n" + attribution)

    # Reproduction targets: the cost-aware objective does not beat the
    # speed-only objective on raw QPS, and it keeps memory usage no higher on
    # average.
    assert comparison.relative_search_speed <= 1.05
    assert comparison.mean_memory_qpd <= comparison.mean_memory_qps * 1.05
