"""Figure 8: ablation of VDTuner's budget allocation and surrogate model."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table


def _section(result, title):
    sacrifices = result.sacrifices
    rows = []
    for variant_name, curve in result.variant_curves.items():
        rows.append([variant_name] + [round(curve[s], 1) for s in sacrifices])
    return format_table(
        ["variant"] + [f"sacrifice {s}" for s in sacrifices], rows, title=title
    )


def test_figure8a_successive_abandon_vs_round_robin(benchmark, ablation_reports):
    result = benchmark.pedantic(
        lambda: ablation_reports["budget_allocation"], rounds=1, iterations=1
    )
    register_report(
        "Figure 8a - budget allocation ablation",
        _section(result, "Figure 8a: successive abandon vs round robin (best QPS per sacrifice)"),
    )
    # Stable reproduction target at fast scale: the full strategy's best
    # discovered configuration (loosest sacrifice) is at least as good as the
    # round-robin variant's — the component does not hurt peak quality.
    abandon = result.variant_curves["successive_abandon"]
    robin = result.variant_curves["round_robin"]
    loosest = result.sacrifices[0]
    assert abandon[loosest] >= 0.95 * robin[loosest]


def test_figure8b_polling_vs_native_surrogate(benchmark, ablation_reports):
    result = benchmark.pedantic(lambda: ablation_reports["surrogate"], rounds=1, iterations=1)
    register_report(
        "Figure 8b - surrogate ablation",
        _section(result, "Figure 8b: polling surrogate vs native surrogate (best QPS per sacrifice)"),
    )
    # Stable reproduction target at fast scale: the polling surrogate's best
    # discovered configuration (loosest sacrifice) is at least as good as the
    # native surrogate's.
    polling = result.variant_curves["polling_surrogate"]
    native = result.variant_curves["native_surrogate"]
    loosest = result.sacrifices[0]
    assert polling[loosest] >= 0.95 * native[loosest]
