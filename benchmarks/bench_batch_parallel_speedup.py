"""Batch-parallel tuning engine: wall-clock speedup vs the sequential loop.

Runs VDTuner twice at the *same evaluation budget* on the same dataset and
seed: once with the paper's strictly sequential loop (one suggestion, one
replay per iteration) and once with the batch-parallel engine
(``suggest_batch(4)`` joint q-EHVI batches evaluated by a 4-worker pool).

Two clocks are reported:

* the **tuning clock** — the simulated workload-replay seconds the paper's
  Table VI accounting is based on, extended to concurrent replay by charging
  each batch its worker-pool makespan.  This is the deterministic,
  machine-independent measure of what a real deployment would wait for,
  because replay time dominates tuning time (Table VI) and the substrate
  simulates it.
* the **harness wall clock** — real seconds spent by this process, reported
  for context (it additionally contains surrogate fitting, which the batch
  engine amortizes over q evaluations per fit).

Asserts the acceptance criteria of the batch-parallel engine: >= 2x tuning
clock speedup at an equal budget, with final Pareto-front quality at parity
or better (hypervolume within 5% of — or above — the sequential run's).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import register_report

from repro.analysis.reporting import format_table
from repro.bo.pareto import hypervolume_2d
from repro.core.tuner import VDTuner, VDTunerSettings
from repro.parallel import BatchEvaluator
from repro.workloads.environment import VDMSTuningEnvironment

DATASET = "glove-small"
BATCH_SIZE = 4
NUM_WORKERS = 4
SEED = 3
ITERATIONS = 64


def _settings() -> VDTunerSettings:
    return VDTunerSettings(
        num_iterations=ITERATIONS,
        abandon_window=max(3, ITERATIONS // 10),
        candidate_pool_size=96,
        ehvi_samples=32,
        seed=SEED,
    )


def _run_sequential():
    environment = VDMSTuningEnvironment(DATASET, seed=SEED)
    started = time.perf_counter()
    report = VDTuner(environment, settings=_settings()).run()
    wall = time.perf_counter() - started
    return environment, report, wall


def _run_batch_parallel():
    environment = VDMSTuningEnvironment(DATASET, seed=SEED)
    started = time.perf_counter()
    tuner = VDTuner(environment, settings=_settings())
    with BatchEvaluator.from_environment(
        environment, num_workers=NUM_WORKERS, backend="process"
    ) as evaluator:
        report = tuner.run(batch_size=BATCH_SIZE, evaluator=evaluator)
    wall = time.perf_counter() - started
    return environment, report, wall


def test_batch_parallel_speedup(benchmark):
    (seq_env, seq_report, seq_wall), (par_env, par_report, par_wall) = benchmark.pedantic(
        lambda: (_run_sequential(), _run_batch_parallel()),
        rounds=1,
        iterations=1,
    )

    # Equal evaluation budget by construction.
    assert len(seq_report.history) == len(par_report.history) == ITERATIONS

    tuning_speedup = seq_env.elapsed_replay_seconds / par_env.elapsed_replay_seconds
    reference = np.zeros(2)
    seq_hv = hypervolume_2d(seq_report.history.pareto_front(), reference)
    par_hv = hypervolume_2d(par_report.history.pareto_front(), reference)

    rows = [
        ["evaluations", ITERATIONS, ITERATIONS],
        ["batch size x workers", "1 x 1", f"{BATCH_SIZE} x {NUM_WORKERS}"],
        ["tuning clock (sim. s)", round(seq_env.elapsed_replay_seconds, 1),
         round(par_env.elapsed_replay_seconds, 1)],
        ["harness wall clock (s)", round(seq_wall, 1), round(par_wall, 1)],
        ["Pareto hypervolume", round(seq_hv, 1), round(par_hv, 1)],
        ["tuning-clock speedup", "1.00x", f"{tuning_speedup:.2f}x"],
    ]
    table = format_table(
        ["metric", "sequential", "batch-parallel"],
        rows,
        title=f"Batch-parallel speedup on {DATASET} ({ITERATIONS} evaluations, seed {SEED})",
    )
    register_report("Batch-parallel engine - speedup", table)

    # Acceptance: >= 2x wall-clock (tuning clock) speedup at equal budget...
    assert tuning_speedup >= 2.0
    # ... with Pareto-front quality within 5% of the sequential run (or better).
    assert par_hv >= 0.95 * seq_hv
