"""Table V: index type and parameters recommended by VDTuner per dataset."""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.config.milvus_space import INDEX_PARAMETERS
from repro.experiments.runner import run_tuner


def test_table5_best_configurations(benchmark, scale, comparison_runs):
    def derive():
        rows = {}
        # GloVe and Keyword-match reuse the shared comparison runs; the
        # ArXiv-titles column gets its own run (it is not part of Figure 6).
        for dataset_name in ("glove-small", "keyword-match-small"):
            rows[dataset_name] = comparison_runs[dataset_name]["vdtuner"].report
        rows["arxiv-titles-small"] = run_tuner("vdtuner", "arxiv-titles-small", scale=scale).report
        return rows

    reports = benchmark.pedantic(derive, rounds=1, iterations=1)
    rows = []
    for dataset_name, report in reports.items():
        best = report.best_observation(recall_floor=0.85) or report.best_observation()
        if best is None:
            rows.append([dataset_name, "-", "-", "-", "-"])
            continue
        relevant = INDEX_PARAMETERS.get(best.index_type, ())
        parameter_text = ", ".join(f"{name}={best.configuration[name]}" for name in relevant) or "(none)"
        rows.append(
            [dataset_name, best.index_type, parameter_text, round(best.speed, 1), round(best.recall, 3)]
        )
    table = format_table(
        ["dataset", "best index", "index parameters", "QPS", "recall"],
        rows,
        title="Table V: best index type and parameters per dataset",
    )
    register_report("Table V - best configurations", table)
    assert len(rows) == 3
