"""Online tuning under workload drift: warm-started vs cold re-tuning.

Runs the continuous tune/serve loop (:class:`repro.core.online.OnlineTuner`)
on dynamic workloads that drift mid-run (:mod:`repro.workloads.dynamic`),
twice per scenario with identical seeds and budgets: once with warm-started
re-tuning (decayed knowledge base as a noise-inflated bootstrap plus
revalidation of the stale Pareto configurations) and once with a cold restart
(the re-tune episode starts from scratch).

Reported per scenario x seed:

* whether the CUSUM detector fired, and how long after the drift onset;
* the **time to recover** — evaluations from the drift onset until the
  service score (speed x recall) reaches 90% of the best score either run
  achieved in the drifted phase (a common target, so warm and cold are
  comparable; runs that never reach it are censored at the phase length);
* the post-drift Pareto hypervolume.

Asserts the headline claim of the online-tuning subsystem: averaged over the
scenario panel, warm-started re-tuning recovers at least as fast as a cold
restart, and strictly faster overall.
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.reporting import format_table
from repro.core.online import OnlineTuner, OnlineTunerSettings
from repro.datasets.registry import load_dataset
from repro.workloads.dynamic import (
    DynamicTuningEnvironment,
    DynamicWorkload,
    make_drift_event,
)

DATASET = "glove-small"
TOTAL_STEPS = 44
RETUNE_BUDGET = 10
DRIFT_STEP = 18
SEVERITY = 0.7
SCENARIOS = ("query_shift", "filter_shift", "qps_burst")
SEEDS = (0, 1)
RECOVERY_FRACTION = 0.9


def _run(drift: str, seed: int, warm: bool):
    dynamic = DynamicWorkload(
        load_dataset(DATASET),
        [make_drift_event(drift, at_step=DRIFT_STEP, severity=SEVERITY)],
        seed=seed,
    )
    environment = DynamicTuningEnvironment(dynamic, seed=seed)
    settings = OnlineTunerSettings(
        total_steps=TOTAL_STEPS,
        retune_budget=RETUNE_BUDGET,
        warm_start=warm,
        detector_threshold=4.0,
        detector_warmup=2,
        seed=seed,
    )
    return OnlineTuner(environment, settings=settings).run()


def _censored_recovery(report, target: float) -> tuple[int, bool]:
    """Evaluations to reach ``target`` in the drifted phase (censored at its length)."""
    recovered = report.time_to_reach_score(1, target)
    phase_length = len(report.phase_records(1))
    if recovered is None:
        return phase_length + 1, True
    return recovered, False


def test_online_drift_recovery(benchmark):
    results = benchmark.pedantic(
        lambda: {
            (drift, seed): (_run(drift, seed, True), _run(drift, seed, False))
            for drift in SCENARIOS
            for seed in SEEDS
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    warm_total = 0
    cold_total = 0
    for (drift, seed), (warm, cold) in results.items():
        warm_best = warm.phase_best(1)
        cold_best = cold.phase_best(1)
        target = RECOVERY_FRACTION * max(
            warm_best.score if warm_best else 0.0,
            cold_best.score if cold_best else 0.0,
        )
        warm_recovery, warm_censored = _censored_recovery(warm, target)
        cold_recovery, cold_censored = _censored_recovery(cold, target)
        warm_total += warm_recovery
        cold_total += cold_recovery
        delay = warm.detection_delay(1)
        rows.append(
            [
                drift,
                seed,
                delay if delay is not None else "-",
                f"{warm_recovery}{'+' if warm_censored else ''}",
                f"{cold_recovery}{'+' if cold_censored else ''}",
                round(warm.phase_hypervolume(1), 1),
                round(cold.phase_hypervolume(1), 1),
            ]
        )

        # Both modes ran the same budget and observed the same drift.
        assert len(warm.records) == len(cold.records) == TOTAL_STEPS
        assert warm.detections == cold.detections

    table = format_table(
        ["drift", "seed", "detect (evals)", "recover warm", "recover cold",
         "post-drift HV warm", "post-drift HV cold"],
        rows,
        title=(
            f"Online drift recovery on {DATASET} "
            f"({TOTAL_STEPS} steps, drift at {DRIFT_STEP}, severity {SEVERITY}; "
            f"recovery = first evaluation at {RECOVERY_FRACTION:.0%} of the common "
            f"post-drift best score, '+' = never, censored at phase length)"
        ),
    )
    register_report("Online drift - warm vs cold recovery", table)

    # Acceptance: warm-started re-tuning recovers strictly faster than a cold
    # restart on aggregate (and no worse on average per scenario).
    assert warm_total < cold_total, (
        f"warm-start recovered in {warm_total} total evaluations, "
        f"cold restart in {cold_total}"
    )
