"""Serving front-end under open-loop load: saturation, shedding, drain.

This benchmark drives a real :class:`~repro.serving.server.ServingFrontend`
(HTTP over a socket, single admission worker) with the open-loop Poisson
load generator and pins the three behaviours admission control exists for:

1. **Below saturation the server just serves.**  At offered loads of 0.3x
   and 0.65x the measured saturation throughput, a deep-queue server sheds
   nothing, expires nothing, and keeps the served p99 within a small
   multiple of the unloaded p99.

2. **Past saturation the server degrades by policy, not by collapse.**  At
   3x saturation, a server whose queue is sized to a latency budget
   (``queue_depth ~= saturation_qps x 1.5 x unloaded_p99``, the depth an
   operator with a 3x-p99 SLO would configure) sheds the excess with
   HTTP 429 in microseconds while the requests it *does* serve stay within
   3x the unloaded p99 — the full-queue wait is bounded by construction.
   Queue depth is the knob that trades shed rate against tail latency;
   an unbounded (or very deep) queue under the same overload would serve
   everything seconds late instead.

3. **Graceful drain abandons nothing.**  Draining mid-load completes every
   admitted request; late arrivals are cleanly rejected, and the admission
   ledger balances exactly.

The saturation point is *measured* (closed-loop probe) rather than assumed,
so the benchmark adapts to however fast the host machine is; it finishes by
feeding the measured saturation into the cost model's calibration hook and
checking the analytic concurrent-QPS is capped by reality.

Latencies here are wall-clock (real sockets, real threads), so the
assertions use ratios against the same-host unloaded baseline, never
absolute milliseconds.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from _record import record_bench
from conftest import register_report

from repro.analysis.reporting import format_table
from repro.serving import ServingConfig, ServingFrontend, measure_saturation, run_load
from repro.vdms.server import VectorDBServer

SEED = 7
#: Sized so one FLAT search costs tens of milliseconds: the service time
#: must dominate per-request HTTP/threading overhead, or "saturation" would
#: measure the socket layer instead of the backend.
CORPUS_ROWS = 96_000
DIMENSION = 64
TOP_K = 10
#: Service must dominate HTTP overhead so "saturation" reflects backend work.
WORKERS = 1

_state: dict = {}


def _backend() -> VectorDBServer:
    """A server with one FLAT-indexed collection big enough to cost real work."""
    if "backend" not in _state:
        backend = VectorDBServer()
        rng = np.random.default_rng(SEED)
        vectors = rng.normal(size=(CORPUS_ROWS, DIMENSION)).astype(np.float32)
        collection = backend.create_collection("bench", DIMENSION, auto_maintenance=False)
        collection.insert(vectors)
        collection.flush()
        collection.create_index("FLAT", {})
        _state["backend"] = backend
    return _state["backend"]


def _baseline() -> dict:
    """Measured saturation QPS and unloaded latency on a deep-queue frontend."""
    if "baseline" not in _state:
        frontend = ServingFrontend(
            _backend(), ServingConfig(queue_depth=256, workers=WORKERS)
        ).start()
        try:
            saturation = measure_saturation(
                frontend.url, "bench", threads=4, duration_seconds=2.0,
                top_k=TOP_K, use_cache=False, seed=SEED,
            )
            assert saturation > 1.0, f"saturation probe failed ({saturation:.2f} qps)"
            unloaded = run_load(
                frontend.url, "bench",
                qps=max(2.0, 0.2 * saturation), duration_seconds=5.0,
                top_k=TOP_K, use_cache=False, seed=SEED,
            )
            assert unloaded.errors == 0 and unloaded.shed == 0
        finally:
            frontend.drain()
        # Guard the p99 estimate against small-sample flukes: it can never be
        # a fast outlier below 1.5x the median.
        p99 = max(unloaded.latency_p99_ms, 1.5 * unloaded.latency_p50_ms)
        _state["baseline"] = {
            "saturation_qps": saturation,
            "unloaded_p50_ms": unloaded.latency_p50_ms,
            "unloaded_p99_ms": p99,
            "phases": [("unloaded", unloaded)],
        }
    return _state["baseline"]


def test_below_saturation_serves_everything():
    baseline = _baseline()
    saturation = baseline["saturation_qps"]
    frontend = ServingFrontend(
        _backend(), ServingConfig(queue_depth=256, workers=WORKERS)
    ).start()
    try:
        for fraction in (0.3, 0.65):
            report = run_load(
                frontend.url, "bench",
                qps=fraction * saturation, duration_seconds=5.0,
                top_k=TOP_K, use_cache=False, seed=SEED + int(fraction * 100),
            )
            baseline["phases"].append((f"{fraction:.2f}x saturation", report))
            assert report.shed == 0, f"shed {report.shed} requests at {fraction}x saturation"
            assert report.expired == 0
            assert report.rejected == 0
            assert report.errors == 0
            assert report.served == report.sent
            # ρ < 0.7: queueing adds little; "bounded" = a small multiple of
            # the unloaded tail (plus absolute slack for 1-core scheduling
            # jitter on tiny samples).
            bound = 3.0 * baseline["unloaded_p99_ms"] + 20.0
            assert report.latency_p99_ms <= bound, (
                f"p99 {report.latency_p99_ms:.1f}ms exceeds {bound:.1f}ms "
                f"at {fraction}x saturation"
            )
    finally:
        frontend.drain()


def test_overload_sheds_while_served_tail_stays_bounded():
    baseline = _baseline()
    saturation = baseline["saturation_qps"]
    p99_unloaded_s = baseline["unloaded_p99_ms"] / 1000.0
    # The latency-budget queue: a full queue is worth ~1.5x the unloaded p99
    # of waiting, so served p99 <= wait + service stays under the 3x SLO.
    queue_depth = max(2, int(round(saturation * 1.5 * p99_unloaded_s)))
    frontend = ServingFrontend(
        _backend(), ServingConfig(queue_depth=queue_depth, workers=WORKERS)
    ).start()
    try:
        report = run_load(
            frontend.url, "bench",
            qps=3.0 * saturation, duration_seconds=5.0,
            top_k=TOP_K, use_cache=False, seed=SEED + 3,
        )
    finally:
        frontend.drain()
    baseline["phases"].append((f"3.00x saturation (queue={queue_depth})", report))
    baseline["overload_queue_depth"] = queue_depth

    assert report.errors == 0
    # ~2/3 of offered load exceeds capacity; shedding must carry it.
    assert report.shed > 0, "overload produced no 429s"
    assert report.shed_rate > 0.2, f"shed rate {report.shed_rate:.2f} implausibly low at 3x"
    assert report.served > 0
    # The headline property: overload does not poison the served tail.
    bound = 3.0 * baseline["unloaded_p99_ms"]
    assert report.latency_p99_ms <= bound, (
        f"served p99 {report.latency_p99_ms:.1f}ms exceeds 3x unloaded p99 "
        f"({bound:.1f}ms) despite the bounded queue"
    )


def test_graceful_drain_mid_load_completes_admitted_requests():
    baseline = _baseline()
    saturation = baseline["saturation_qps"]
    frontend = ServingFrontend(
        _backend(), ServingConfig(queue_depth=256, workers=WORKERS)
    ).start()
    done = {}

    def offered_load():
        done["report"] = run_load(
            frontend.url, "bench",
            qps=0.8 * saturation, duration_seconds=6.0,
            top_k=TOP_K, use_cache=False, seed=SEED + 4,
            dimension=DIMENSION, sample_stats_every=None,
        )

    client = threading.Thread(target=offered_load)
    client.start()
    try:
        threading.Event().wait(1.5)  # let the stream establish itself
        drained = frontend.drain()
    finally:
        client.join(timeout=60.0)
    report = done["report"]
    stats = frontend.admission.stats()

    assert drained is True, "drain timed out with admitted requests in flight"
    assert stats.in_flight == 0
    # Admitted work is a promise: everything admitted was served (nothing
    # expired — no deadlines here — and nothing failed or was abandoned).
    assert stats.admitted == stats.served
    assert stats.failed == 0
    assert report.served == stats.served
    # The client saw every request answered: served before the drain,
    # 503-rejected during it, connection-refused (errors) after close.
    assert report.served + report.rejected + report.errors == report.sent
    assert report.served > 0 and report.rejected + report.errors > 0
    baseline["drain"] = {"report": report, "stats": stats}


def test_measured_saturation_calibrates_cost_model():
    baseline = _baseline()
    saturation = baseline["saturation_qps"]
    backend = _backend()
    scheduled, trace = backend.concurrent_search(
        "bench", np.random.default_rng(SEED + 5).normal(size=(16, DIMENSION)).astype(np.float32),
        TOP_K,
    )
    assert scheduled.ids.shape == (16, TOP_K)
    profile = backend.get_collection("bench").profile()
    workers = backend.system_config.effective_search_workers()

    analytic_qps, _ = backend.cost_model().concurrent_qps(
        trace.request_shard_stats, profile, workers=workers
    )
    backend.calibrate_saturation(saturation)
    calibrated_qps, calibrated_makespan = backend.cost_model().concurrent_qps(
        trace.request_shard_stats, profile, workers=workers
    )
    # The analytic schedule may be optimistic; the measured ceiling wins.
    assert calibrated_qps == min(analytic_qps, saturation)
    assert calibrated_qps <= saturation
    assert calibrated_qps * calibrated_makespan == pytest.approx(
        len(trace.request_shard_stats)
    )
    baseline["calibration"] = {"analytic": analytic_qps, "calibrated": calibrated_qps}


def test_zz_report():
    """Render the sweep table (runs last; depends on the phases above)."""
    baseline = _baseline()
    rows = []
    for label, report in baseline["phases"]:
        rows.append(
            [
                label,
                round(report.offered_qps, 1),
                round(report.achieved_qps, 1),
                report.served,
                report.shed,
                report.rejected,
                f"{report.shed_rate:.2f}",
                round(report.latency_p50_ms, 1),
                round(report.latency_p99_ms, 1),
                round(report.queue_depth_mean, 1),
            ]
        )
    lines = [
        format_table(
            ["phase", "offered", "achieved", "served", "shed", "503", "shed rate",
             "p50 ms", "p99 ms", "queue"],
            rows,
            title=(
                f"open-loop saturation sweep (measured saturation "
                f"{baseline['saturation_qps']:.1f} qps, {WORKERS} worker, "
                f"{CORPUS_ROWS}x{DIMENSION} FLAT)"
            ),
        )
    ]
    if "calibration" in baseline:
        calibration = baseline["calibration"]
        if calibration["calibrated"] < calibration["analytic"]:
            lines.append(
                f"cost-model calibration: analytic {calibration['analytic']:.1f} qps "
                f"capped at measured saturation {calibration['calibrated']:.1f} qps"
            )
        else:
            lines.append(
                f"cost-model calibration: analytic {calibration['analytic']:.1f} qps "
                f"already below the measured saturation "
                f"({baseline['saturation_qps']:.1f} qps); ceiling registered, no cap"
            )
    if "drain" in baseline:
        stats = baseline["drain"]["stats"]
        lines.append(
            f"mid-load drain: {stats.served} admitted requests all completed, "
            f"0 abandoned"
        )
    register_report("serving saturation under open-loop load", "\n".join(lines))
    record_bench(
        "serving",
        {
            "corpus_rows": CORPUS_ROWS,
            "dimension": DIMENSION,
            "workers": WORKERS,
            "saturation_qps": round(baseline["saturation_qps"], 2),
            "unloaded_p50_ms": round(baseline["unloaded_p50_ms"], 3),
            "unloaded_p99_ms": round(baseline["unloaded_p99_ms"], 3),
            "phases": [
                {"phase": label, **{k: (round(v, 3) if isinstance(v, float) else v)
                                    for k, v in report.to_dict().items()}}
                for label, report in baseline["phases"]
            ],
            "overload_queue_depth": baseline.get("overload_queue_depth"),
            "calibration": {
                k: round(v, 2) for k, v in baseline.get("calibration", {}).items()
            },
        },
    )
