"""Background maintenance: post-churn QPS recovery without a full rebuild.

The scenario the maintenance subsystem exists for: a serving collection has
part of its corpus deleted (stale content) and fresh rows inserted (trending
content).  The deletes tombstone the touched sealed segments and drop their
per-segment indexes, so those segments are brute-forced — the post-delete
QPS cliff — and the fresh rows land in new, unindexed sealed segments.

Three states are measured with the deterministic cost model:

1. **steady** — the freshly indexed pre-churn collection;
2. **churned** — after the deletes + inserts, maintenance off: the cliff;
3. **maintained** — after one ``run_maintenance()`` pass (compaction +
   per-segment incremental re-indexing; ``create_index`` is *never* called
   again).

Asserts the acceptance criterion of the maintenance subsystem: the
maintained QPS recovers to >= 0.9x the pre-churn steady state, the recovery
is incremental (untouched segments keep their index objects; only a strict
subset of segments is re-indexed), and recall against a brute-force oracle
of the live corpus stays exact throughout (FLAT serving).

A second table replays the same churn through the tuning stack's
mutation-plan path (:class:`repro.workloads.replay.MutationPlan`) for
``maintenance_mode`` in {off, inline, background} — the cliff and its heal
are visible to the tuner, which is what makes the maintenance knobs
tunable.
"""

from __future__ import annotations

import numpy as np
from conftest import register_report

from repro.analysis.reporting import format_table
from repro.datasets.ground_truth import brute_force_neighbors, recall_at_k
from repro.datasets.registry import load_dataset
from repro.vdms import Collection, CostModel, SystemConfig
from repro.workloads.dynamic import DataChurnEvent, DynamicWorkload
from repro.workloads.replay import WorkloadReplayer

DATASET = "glove-small"
TOP_K = 10
CONCURRENCY = 10

#: Several sealed segments per shard, IVF_FLAT probing a fraction of the
#: lists: indexed segments score ~nprobe/nlist of their rows while
#: de-indexed segments are scanned in full — the brute-force cliff is a
#: speed effect (recall on brute-forced segments is actually *exact*, which
#: is why the cliff is so easy to misread as acceptable).
CONFIG = dict(
    shard_num=2,
    segment_max_size=256,
    segment_seal_proportion=0.5,
    insert_buf_size=64,
    graceful_time=10_000,
    compaction_trigger_ratio=0.2,
)
INDEX_TYPE = "IVF_FLAT"
INDEX_PARAMS = {"nlist": 32, "nprobe": 4}


def measure(collection, queries, corpus, corpus_ids):
    """(qps, recall, brute_rows) of the collection's current state."""
    result = collection.search(queries, TOP_K)
    model = CostModel(collection.system_config)
    profile = collection.profile()
    latency, _ = model.query_latency_microseconds(result.stats, profile)
    qps = model.throughput_qps(latency, CONCURRENCY)
    truth = corpus_ids[
        brute_force_neighbors(corpus, queries, TOP_K, collection.metric)
    ]
    recall = recall_at_k(result.ids, truth, TOP_K)
    snapshots = [shard.snapshot() for shard in collection.shards]
    brute_rows = sum(
        int(rows.shape[0]) for s in snapshots for rows in s.brute_vectors
    )
    return qps, recall, brute_rows, profile


def test_compaction_recovery():
    dataset = load_dataset(DATASET)
    vectors = dataset.vectors
    queries = dataset.queries
    num_rows = vectors.shape[0]

    collection = Collection(
        "churny",
        dataset.dimension,
        metric=dataset.metric,
        system_config=SystemConfig(**CONFIG),
        auto_maintenance=False,
    )
    collection.insert(vectors)
    collection.flush()
    collection.create_index(INDEX_TYPE, INDEX_PARAMS)

    corpus_ids = np.arange(num_rows, dtype=np.int64)
    steady_qps, steady_recall, steady_brute, _ = measure(
        collection, queries, vectors, corpus_ids
    )

    # Churn: the oldest 35% of the corpus goes stale, the same volume of
    # fresh content arrives.
    rng = np.random.default_rng(5)
    churn = int(0.35 * num_rows)
    doomed = np.arange(churn, dtype=np.int64)
    fresh = rng.normal(size=(churn, dataset.dimension)).astype(np.float32)
    fresh_ids = np.arange(num_rows, num_rows + churn, dtype=np.int64)
    untouched_indexes = {
        (shard.shard_id, segment_id): index
        for shard in collection.shards
        for segment_id, index in shard.indexes.items()
    }

    collection.delete(doomed)
    collection.insert(fresh, ids=fresh_ids)
    collection.flush()

    live_corpus = np.concatenate([vectors[churn:], fresh], axis=0)
    live_ids = np.concatenate([corpus_ids[churn:], fresh_ids])
    churned_qps, churned_recall, churned_brute, churned_profile = measure(
        collection, queries, live_corpus, live_ids
    )

    report = collection.run_maintenance()
    total_sealed = sum(len(s.segments.sealed_segments) for s in collection.shards)
    maintained_qps, maintained_recall, maintained_brute, maintained_profile = measure(
        collection, queries, live_corpus, live_ids
    )

    rows = [
        ["steady (pre-churn)", round(steady_qps, 1), "1.00", round(steady_recall, 4), steady_brute, "-"],
        [
            "churned, maintenance off",
            round(churned_qps, 1),
            f"{churned_qps / steady_qps:.2f}",
            round(churned_recall, 4),
            churned_brute,
            churned_profile.tombstone_rows,
        ],
        [
            "after run_maintenance()",
            round(maintained_qps, 1),
            f"{maintained_qps / steady_qps:.2f}",
            round(maintained_recall, 4),
            maintained_brute,
            maintained_profile.tombstone_rows,
        ],
    ]
    table = format_table(
        ["state", "QPS", "vs steady", "recall", "brute-forced rows", "tombstones"],
        rows,
        title=(
            f"post-churn recovery on {DATASET} (35% churn, "
            f"{report.segments_compacted} compacted / {report.segments_reindexed} "
            f"re-indexed of {total_sealed} sealed segments, no full rebuild)"
        ),
    )

    # The cliff is real...
    assert churned_qps < 0.9 * steady_qps, (
        f"churn produced no measurable cliff ({churned_qps:.0f} vs {steady_qps:.0f} QPS)"
    )
    # ...and incremental maintenance heals it.
    assert maintained_qps >= 0.9 * steady_qps, (
        f"maintained QPS {maintained_qps:.0f} < 0.9x steady {steady_qps:.0f}"
    )
    # Recovery was incremental: a strict subset of segments was re-indexed
    # and at least one untouched segment kept its exact index object.
    assert 0 < report.segments_reindexed < total_sealed
    survivors = [
        index
        for shard in collection.shards
        for segment_id, index in shard.indexes.items()
        if untouched_indexes.get((shard.shard_id, segment_id)) is index
    ]
    assert survivors, "maintenance rebuilt every index — that is a full rebuild"
    # Healed serving keeps recall parity with the pre-churn steady state
    # (brute-forced segments scan exactly, so the churned state may even
    # score *higher* recall — the cliff is purely a speed regression).
    assert maintained_recall >= steady_recall - 0.05
    assert churned_recall >= maintained_recall - 0.02
    # Compaction reclaimed the tombstoned storage.
    assert maintained_profile.tombstone_rows < churned_profile.tombstone_rows

    # -- the same churn, as the tuner sees it (mutation-plan replays) -----------
    dynamic = DynamicWorkload(
        dataset, events=[DataChurnEvent(at_step=2, severity=0.6)], seed=0
    )
    phase = dynamic.phase(1)
    mode_rows = []
    mode_qps = {}
    for mode in ("off", "inline", "background"):
        replayer = WorkloadReplayer(
            phase.dataset,
            phase.workload,
            mutations=phase.mutations,
            row_ids=phase.row_ids,
        )
        result = replayer.replay(
            {
                "index_type": INDEX_TYPE,
                **INDEX_PARAMS,
                **CONFIG,
                "maintenance_mode": mode,
            }
        )
        mode_qps[mode] = result.qps
        mode_rows.append(
            [
                mode,
                round(result.qps, 1),
                round(result.recall, 4),
                round(result.breakdown.get("maintenance_seconds", 0.0), 2),
                int(result.breakdown.get("segments_reindexed", 0)),
                int(result.breakdown.get("tombstone_rows", 0)),
            ]
        )
    mode_table = format_table(
        ["maintenance_mode", "QPS", "recall", "maint (s)", "re-indexed", "tombstones"],
        mode_rows,
        title=f"churn replay through the tuning stack on {DATASET} (severity 0.6)",
    )
    register_report("compaction recovery - post-churn qps", table + "\n\n" + mode_table)

    # The tuner can tell the healed modes from the cliff.
    assert mode_qps["inline"] > mode_qps["off"]
    assert mode_qps["background"] > mode_qps["off"]
