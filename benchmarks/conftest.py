"""Shared machinery for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The expensive
tuning runs are shared across benchmark files through session-scoped
fixtures, and every benchmark registers a plain-text table with
:func:`register_report`; the tables are printed together at the end of the
pytest session (and written to ``benchmarks/results/``), so
``pytest benchmarks/ --benchmark-only`` produces the same rows/series the
paper reports.

Scale: the default "fast" scale keeps the whole suite in tens of minutes;
``VDTUNER_FULL=1`` switches to paper-scale iteration counts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.comparison import PAPER_DATASETS
from repro.experiments.runner import PAPER_TUNERS, run_tuner_comparison
from repro.experiments.settings import current_scale

_REPORTS: list[tuple[str, str]] = []
_RESULTS_DIR = Path(__file__).parent / "results"


def register_report(title: str, text: str) -> None:
    """Record a regenerated table/figure so it is printed at session end."""
    _REPORTS.append((title, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    slug = title.lower().replace(" ", "_").replace("/", "-")[:80]
    (_RESULTS_DIR / f"{slug}.txt").write_text(text + "\n", encoding="utf-8")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("VDTuner reproduction: regenerated tables and figures")
    for title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {title} ====")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def scale():
    """The experiment scale selected by VDTUNER_FULL."""
    return current_scale()


@pytest.fixture(scope="session")
def comparison_runs(scale):
    """All paper tuners run on every Table III dataset (shared by several benches)."""
    runs = {}
    for dataset_name in PAPER_DATASETS:
        runs[dataset_name] = run_tuner_comparison(
            dataset_name, tuners=PAPER_TUNERS, scale=scale
        )
    return runs


@pytest.fixture(scope="session")
def glove_comparison(comparison_runs):
    """The GloVe-stand-in comparison used by Figure 7 and Table VI."""
    return comparison_runs["glove-small"]


@pytest.fixture(scope="session")
def ablation_reports(scale):
    """VDTuner component-ablation runs shared by Figures 8, 9 and 10."""
    from repro.experiments.ablation import figure8_ablation

    budget = figure8_ablation("glove-small", component="budget_allocation", scale=scale)
    surrogate = figure8_ablation("glove-small", component="surrogate", scale=scale)
    return {"budget_allocation": budget, "surrogate": surrogate}
